//! `totoro-trace` — offline analytics over totoro-bench JSONL traces.
//!
//! ```text
//! totoro-trace summary       TRACE.jsonl [--json]
//! totoro-trace critical-path TRACE.jsonl [--json]
//! totoro-trace timeline      TRACE.jsonl [--bucket-us N] [--json]
//! totoro-trace matrix        TRACE.jsonl [--buckets N]
//! totoro-trace diff          A.jsonl B.jsonl
//! ```
//!
//! Traces come from `totoro-bench <scenario> --trace PATH.jsonl`. All
//! analytics are pure functions of the trace text, so output is
//! deterministic and pinnable; tables go to stdout through
//! [`totoro_bench::report::emit`], errors to stderr. Exit codes: 0 on
//! success, 1 on IO/parse failure, 2 on usage errors.

use totoro_bench::{logging, report, traceview};

const USAGE: &str = "usage: totoro-trace <command> [args]

commands:
  summary       TRACE.jsonl [--json]    per-layer event counts, bytes, latency
  critical-path TRACE.jsonl [--json]    longest causal send chain, per hop
  timeline      TRACE.jsonl [--bucket-us N]  in-flight depth timeline (CSV)
  matrix        TRACE.jsonl [--buckets N]    src x dst traffic matrix
  diff          A.jsonl B.jsonl         compare two traces of the same run";

fn fail_usage(msg: &str) -> ! {
    logging::error(msg);
    // det: allow(golden_out: usage text on stderr of an offline CLI, not a golden surface)
    eprintln!("{USAGE}");
    std::process::exit(2);
}

fn load(path: &str) -> Vec<traceview::TraceEvent> {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            logging::error(format!("cannot read {path}: {e}"));
            std::process::exit(1);
        }
    };
    match traceview::parse_jsonl(&text) {
        Ok(events) => events,
        Err(e) => {
            logging::error(format!("{path}: {e}"));
            std::process::exit(1);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        fail_usage("missing command");
    };
    let mut paths: Vec<&str> = Vec::new();
    let mut json = false;
    let mut bucket_us: u64 = 1_000;
    let mut buckets: usize = 8;
    let mut it = args[1..].iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--bucket-us" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => bucket_us = v,
                None => fail_usage("--bucket-us needs an integer value"),
            },
            "--buckets" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) if v > 0 => buckets = v,
                _ => fail_usage("--buckets needs a positive integer value"),
            },
            other if other.starts_with("--") => {
                fail_usage(&format!("unknown flag {other}"));
            }
            path => paths.push(path),
        }
    }
    // `diff` is also accepted as a flag spelling (`totoro-trace --diff A B`
    // reads naturally next to `totoro-bench --trace`).
    let command = command.trim_start_matches("--");
    match command {
        "summary" | "critical-path" | "timeline" | "matrix" => {
            let [path] = paths[..] else {
                fail_usage(&format!("{command} takes exactly one TRACE.jsonl"));
            };
            let events = load(path);
            let out = match command {
                "summary" => {
                    let s = traceview::summarize(&events);
                    if json {
                        traceview::summary_json(&s)
                    } else {
                        traceview::render_summary(path, &s)
                    }
                }
                "critical-path" => {
                    let p = traceview::critical_path(&events);
                    if json {
                        traceview::path_json(p.as_ref())
                    } else {
                        traceview::render_critical_path(path, p.as_ref())
                    }
                }
                "timeline" => {
                    let tl = traceview::timeline(&events, bucket_us);
                    traceview::render_timeline(path, &tl, bucket_us)
                }
                _ => {
                    let m = traceview::matrix(&events, buckets);
                    traceview::render_matrix(path, &m)
                }
            };
            report::emit(out);
            if json {
                report::emitln("");
            }
        }
        "diff" => {
            let [a, b] = paths[..] else {
                fail_usage("diff takes exactly two trace files");
            };
            let (a_text, b_text) = match (std::fs::read_to_string(a), std::fs::read_to_string(b)) {
                (Ok(x), Ok(y)) => (x, y),
                (Err(e), _) => {
                    logging::error(format!("cannot read {a}: {e}"));
                    std::process::exit(1);
                }
                (_, Err(e)) => {
                    logging::error(format!("cannot read {b}: {e}"));
                    std::process::exit(1);
                }
            };
            let ea = load(a);
            let eb = load(b);
            report::emit(traceview::render_diff(a, &a_text, &ea, b, &b_text, &eb));
        }
        other => fail_usage(&format!("unknown command {other:?}")),
    }
}
