//! Shim binary: runs the `fig7` scenario (Fig. 7: per-node TCP/UDP traffic
//! vs number of trees). Same flags as `totoro-bench fig7`.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    totoro_bench::scenarios::run_named("fig7", &args);
}
