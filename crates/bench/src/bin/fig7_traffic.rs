//! Figure 7: per-node network traffic (TCP/UDP) as the number of dataflow
//! trees grows.
//!
//! The paper's observation: increasing the number of trees 10× increases
//! per-node traffic by only ~1.19× (TCP) / ~1.29× (UDP), because new trees
//! merely add JOIN paths over the existing overlay whose maintenance cost
//! dominates and is shared.
//!
//! Method: run an overlay for a fixed maintenance-only window with `k`
//! live trees (tree keep-alives on top of the shared DHT upkeep) and
//! report mean wire bytes per node under the TCP and UDP overhead models.
//!
//! Usage: `fig7_traffic [--nodes 300] [--seed 1] [--window-secs 120]`

use totoro_bench::report::{arg_u64, arg_usize, csv_block, f2, markdown_table};
use totoro_bench::setups::{build_tree, echo_overlay_with, eua_topology, topic};
use totoro_pubsub::ForestConfig;
use totoro_simnet::{sub_rng, SimDuration, SimTime};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let n = arg_usize(&args, "nodes", 300);
    let seed = arg_u64(&args, "seed", 1);
    let window = arg_u64(&args, "window-secs", 120);

    println!("# Figure 7: traffic per node vs number of trees (n={n}, window={window}s)");

    let tree_counts = [1usize, 2, 5, 10, 20];
    let mut rows = Vec::new();
    let mut base: Option<(f64, f64)> = None;
    for &k in &tree_counts {
        let (tcp, udp, msgs) = run_with_trees(n, k, seed, window);
        let (tcp0, udp0) = *base.get_or_insert((tcp, udp));
        rows.push(vec![
            k.to_string(),
            f2(tcp / 1024.0),
            f2(udp / 1024.0),
            f2(tcp / tcp0),
            f2(udp / udp0),
            msgs.to_string(),
        ]);
        println!(
            "  trees={k}: tcp {:.1} KiB/node (x{:.2}), udp {:.1} KiB/node (x{:.2})",
            tcp / 1024.0,
            tcp / tcp0,
            udp / 1024.0,
            udp / udp0
        );
    }
    markdown_table(
        "Fig 7: mean wire bytes per node over the window",
        &[
            "trees",
            "TCP KiB/node",
            "UDP KiB/node",
            "TCP ratio vs 1 tree",
            "UDP ratio vs 1 tree",
            "total msgs",
        ],
        &rows,
    );
    csv_block(
        "fig7",
        &["trees", "tcp_kib", "udp_kib", "tcp_ratio", "udp_ratio", "msgs"],
        &rows,
    );
    let last = rows.last().unwrap();
    println!(
        "\npaper check: 10x trees -> ~1.19x TCP / ~1.29x UDP; measured at {}x trees: {}x TCP, {}x UDP",
        tree_counts.last().unwrap(),
        last[3],
        last[4]
    );
}

/// Runs `k` trees over an `n`-node overlay for `window` seconds after
/// setup; returns (mean TCP bytes/node, mean UDP bytes/node, total msgs).
fn run_with_trees(n: usize, k: usize, seed: u64, window: u64) -> (f64, f64, u64) {
    let topology = eua_topology(n, seed);
    let n = topology.len();
    // Production-like maintenance cadence: tree keep-alives every 4 s (the
    // DHT's own heartbeats every 2 s dominate, as in FreePastry).
    let fconfig = ForestConfig {
        fanout_cap: 16,
        tick: SimDuration::from_secs(4),
        agg_timeout: SimDuration::from_secs(120),
        ..ForestConfig::default()
    };
    let mut sim = echo_overlay_with(topology, seed, 16, fconfig);
    let members: Vec<usize> = (0..n).collect();
    let mut rng = sub_rng(seed + k as u64, "membership");
    let mut topics = Vec::new();
    for t in 0..k {
        let tp = topic("fig7", t as u64);
        let subset: Vec<usize> =
            rand::seq::SliceRandom::choose_multiple(&members[..], &mut rng, n / 2)
                .copied()
                .collect();
        build_tree(&mut sim, tp, &subset, SimTime::ZERO);
        topics.push(tp);
    }
    // Settle, then measure a clean maintenance-only window (the paper's
    // point: creating new trees adds little traffic on top of the shared
    // overlay upkeep).
    sim.run_until(SimTime::from_micros(60 * 1_000_000));
    sim.traffic_mut().reset();
    let start = sim.now();
    let end = SimTime::from_micros(start.as_micros() + window * 1_000_000);
    sim.run_until(end);
    let _ = &topics;

    (
        sim.traffic().mean_tcp_sent(),
        sim.traffic().mean_udp_sent(),
        sim.traffic().total_msgs(),
    )
}
