//! Shim binary: runs the `table3` scenario (Table 3: time-to-accuracy
//! speedups vs OpenFL/FedScale). Same flags as `totoro-bench table3`.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    totoro_bench::scenarios::run_named("table3", &args);
}
