//! Shared experiment builders: topologies, forest deployments, FL app
//! generation — the common scaffolding behind the figure binaries.

use std::sync::Arc;

use totoro::{FlAppConfig, TotoroDeployment};
use totoro_baselines::AppSpec;
use totoro_dht::{app_id, spawn_overlay_with_sink, DhtConfig, Id};
use totoro_ml::{femnist_like, speech_commands_like, TaskGenerator, TaskSpec};
use totoro_pubsub::{Forest, ForestApi, ForestApp, ForestConfig, ForestNode, TreeData};
use totoro_simnet::geo::{eua_regions_scaled, generate};
use totoro_simnet::{
    sub_rng, LatencyModel, NodeIdx, NoopSink, Payload, SimDuration, SimTime, Simulator, Topology,
    TraceSink,
};

/// Continental-scale geographic latency model used across experiments.
pub fn edge_latency() -> LatencyModel {
    LatencyModel::Geo {
        base_us: 500,
        per_km_us: 5.0,
    }
}

/// An EUA-shaped topology with roughly `n` nodes.
pub fn eua_topology(n: usize, seed: u64) -> Topology {
    let mut rng = sub_rng(seed, "eua-topology");
    let nodes = generate(&eua_regions_scaled(n), &mut rng);
    Topology::from_placements(&nodes, edge_latency())
}

/// The "speech" (mid-scale) or "femnist" (large-scale) task by name.
pub fn task_by_name(name: &str) -> TaskSpec {
    match name {
        "speech" => speech_commands_like(),
        "femnist" => femnist_like(),
        other => panic!("unknown dataset {other} (use speech|femnist)"),
    }
}

/// Paper-matching accuracy target per task (Table 3).
pub fn target_for(task: &TaskSpec) -> f64 {
    match task.name {
        "speech" => 0.53,
        "femnist" => 0.755,
        _ => 0.8,
    }
}

/// Builds one FL application config over `generator` with paper-style
/// hyperparameters (minibatch 20; §7.1).
pub fn fl_app_config(
    name: &str,
    salt: u64,
    generator: &TaskGenerator,
    hidden: usize,
    seed: u64,
) -> FlAppConfig {
    let mut rng = sub_rng(seed, "test-set");
    let mut cfg = FlAppConfig::new(
        name,
        vec![generator.spec.dim, hidden, generator.spec.classes],
        Arc::new(generator.test_set(300, &mut rng)),
    );
    cfg.salt = salt;
    cfg.batch_size = 20;
    cfg.lr = 0.1;
    cfg.target_accuracy = target_for(&generator.spec);
    cfg.max_rounds = 60;
    cfg.round_pause = totoro_simnet::SimDuration::from_secs(1);
    cfg.seed = seed;
    cfg
}

/// Mirrors a [`FlAppConfig`] into the centralized engines' [`AppSpec`].
pub fn to_central_spec(cfg: &FlAppConfig) -> AppSpec {
    AppSpec {
        name: cfg.name.clone(),
        model_dims: cfg.model_dims.clone(),
        aggregation: cfg.aggregation,
        local_epochs: cfg.local_epochs,
        batch_size: cfg.batch_size,
        lr: cfg.lr,
        target_accuracy: cfg.target_accuracy,
        max_rounds: cfg.max_rounds,
        test_set: Arc::clone(&cfg.test_set),
        seed: cfg.seed,
    }
}

/// Builds a Totoro deployment and submits `num_apps` identical-task apps,
/// each trained by all `n` nodes. Returns the deployment.
pub fn totoro_with_apps(
    topology: Topology,
    seed: u64,
    fanout: usize,
    num_apps: usize,
    generator: &TaskGenerator,
    samples_per_client: usize,
    max_rounds: u64,
) -> TotoroDeployment {
    let n = topology.len();
    let mut deploy = TotoroDeployment::new(
        topology,
        seed,
        DhtConfig::with_fanout(fanout),
        ForestConfig {
            fanout_cap: fanout,
            agg_timeout: SimDuration::from_secs(30),
            ..ForestConfig::default()
        },
    );
    let mut rng = sub_rng(seed, "shards");
    let participants: Vec<NodeIdx> = (0..n).collect();
    for a in 0..num_apps {
        let shards = generator.client_shards(n, samples_per_client, 0.5, &mut rng);
        let mut cfg = fl_app_config(
            &format!("{}-app-{a}", generator.spec.name),
            a as u64,
            generator,
            48,
            1_000 + a as u64,
        );
        cfg.max_rounds = max_rounds;
        deploy.submit_app(cfg, &participants, shards);
    }
    deploy
}

// ---------------------------------------------------------------------------
// A minimal forest app for pure overlay experiments (no ML): counts bytes.
// ---------------------------------------------------------------------------

/// Fixed-size blob for dissemination/aggregation measurements.
#[derive(Clone, Debug)]
pub struct Blob {
    /// Payload size in bytes.
    pub bytes: usize,
    /// Contribution counter (for aggregation checks).
    pub count: u64,
}

impl Payload for Blob {
    fn size_bytes(&self) -> usize {
        self.bytes
    }
}

impl TreeData for Blob {
    fn combine(&mut self, other: &Self) {
        self.count += other.count;
        self.bytes = self.bytes.max(other.bytes);
    }
}

/// A pass-through forest app: every subscriber instantly contributes a
/// same-sized blob; the root records completions. Used by Figures 6/7/12.
#[derive(Default)]
pub struct EchoApp {
    /// `(topic, round, count)` completions observed at this node as root.
    pub completed: Vec<(Id, u64, u64)>,
    /// Reply size for contributions (defaults to broadcast size).
    pub reply_bytes: Option<usize>,
    /// Simulated local compute before replying.
    pub compute: SimDuration,
}

impl ForestApp for EchoApp {
    type Data = Blob;

    fn on_model(
        &mut self,
        _api: &mut ForestApi<'_, '_, '_, Blob>,
        _topic: Id,
        _round: u64,
        data: &Blob,
    ) -> Option<(Blob, SimDuration)> {
        Some((
            Blob {
                bytes: self.reply_bytes.unwrap_or(data.bytes),
                count: 1,
            },
            self.compute,
        ))
    }

    fn on_aggregated(
        &mut self,
        _api: &mut ForestApi<'_, '_, '_, Blob>,
        topic: Id,
        round: u64,
        _data: Blob,
        count: u64,
    ) {
        self.completed.push((topic, round, count));
    }
}

/// An overlay of `EchoApp` nodes, generic over the installed trace sink
/// (defaulting to the zero-cost [`NoopSink`]).
pub type EchoSim<S = NoopSink> = Simulator<ForestNode<EchoApp>, S>;

/// Spawns an echo overlay over `topology` with tree fanout `fanout`.
pub fn echo_overlay(topology: Topology, seed: u64, fanout: usize) -> EchoSim {
    echo_overlay_sink(topology, seed, fanout, NoopSink)
}

/// [`echo_overlay`] with an explicit trace sink installed.
pub fn echo_overlay_sink<S: TraceSink>(
    topology: Topology,
    seed: u64,
    fanout: usize,
    sink: S,
) -> EchoSim<S> {
    let fconfig = ForestConfig {
        fanout_cap: fanout,
        agg_timeout: SimDuration::from_secs(120),
        ..ForestConfig::default()
    };
    echo_overlay_with_sink(topology, seed, fanout, fconfig, sink)
}

/// [`echo_overlay`] with an explicit forest configuration.
pub fn echo_overlay_with(
    topology: Topology,
    seed: u64,
    fanout: usize,
    fconfig: ForestConfig,
) -> EchoSim {
    echo_overlay_with_sink(topology, seed, fanout, fconfig, NoopSink)
}

/// [`echo_overlay_with`] with an explicit trace sink installed.
pub fn echo_overlay_with_sink<S: TraceSink>(
    topology: Topology,
    seed: u64,
    fanout: usize,
    fconfig: ForestConfig,
    sink: S,
) -> EchoSim<S> {
    let (sim, _ids) = spawn_overlay_with_sink(
        topology,
        seed,
        DhtConfig::with_fanout(fanout),
        None,
        sink,
        |_i| Forest::new(EchoApp::default(), fconfig),
    );
    sim
}

/// Subscribes `members` to `topic` and runs until `settle`.
pub fn build_tree<S: TraceSink>(
    sim: &mut EchoSim<S>,
    topic: Id,
    members: &[NodeIdx],
    settle: SimTime,
) {
    for &m in members {
        sim.with_app(m, |node, ctx| {
            node.with_api(ctx, |forest, dht| {
                forest.with_forest_api(dht, |_app, api| api.subscribe(topic));
            });
        });
    }
    sim.run_until(settle);
}

/// The current root of `topic`, if any.
pub fn root_of<S: TraceSink>(sim: &EchoSim<S>, topic: Id) -> Option<NodeIdx> {
    (0..sim.len()).find(|&i| {
        sim.app(i)
            .upper
            .state
            .membership(topic)
            .is_some_and(|m| m.is_root)
    })
}

/// Broadcasts one blob of `bytes` on `topic` (round `round`) from the root.
pub fn broadcast_from_root<S: TraceSink>(
    sim: &mut EchoSim<S>,
    topic: Id,
    round: u64,
    bytes: usize,
) {
    let root = root_of(sim, topic).expect("tree has a root");
    sim.with_app(root, |node, ctx| {
        node.with_api(ctx, |forest, dht| {
            forest.with_forest_api(dht, |_app, api| {
                api.broadcast(topic, round, Blob { bytes, count: 0 });
            });
        });
    });
}

/// A deterministic topic for experiment `label` / index `k`.
pub fn topic(label: &str, k: u64) -> Id {
    app_id(label, "bench", k)
}
