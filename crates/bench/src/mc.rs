//! Model-checkable worlds over the echo forest stack.
//!
//! This module is the bench-side half of the bounded model checker: the
//! `totoro-mc` crate owns the exploration engine (DFS, dedup, sleep
//! sets, minimization); here live the concrete *worlds* it explores —
//! small, fully deterministic echo-forest configurations — plus the
//! canonical state hashing, the oracle set adapted from the chaos
//! harness (DESIGN.md §9), and a scenario-style registry the `totoro-mc`
//! binary and the regression tests share.
//!
//! # World model
//!
//! A [`McWorld`] wraps an [`EchoSim`] built by a deterministic recipe
//! (uniform-delay topology, fixed seed, a settle prefix). Exploration
//! choices map onto the simulator's exploration hooks; `closeout` runs
//! the world forward in plain `(time, seq)` order to the scenario's
//! settle horizon before the quiescent oracles judge the end state.
//! Oracles are deliberately *not* evaluated mid-exploration: transient
//! states (a JOIN in flight, a cycle the breaker has not yet noticed)
//! are legitimate, and the protocol's own self-healing machinery is part
//! of what is being verified — see DESIGN.md §14.
//!
//! # Canonical state hash
//!
//! [`McWorld::state_hash`] digests, with layer tags and sorted
//! iteration: the liveness bitmap; each node's DHT tables (routing
//! contacts, leaf set, neighborhood); each forest membership (parent,
//! children, depth, flags, per-round aggregation); the echo app's
//! completions; and the pending-event multiset with times *relative* to
//! `now` and sequence numbers excluded. Excluded entirely: RNG position,
//! traffic/compute ledgers, and stats counters — observational outputs
//! that never feed back into protocol decisions.

use std::hash::Hasher;

use totoro_dht::{DhtConfig, Id, UPPER_TIMER_BASE};
use totoro_mc::{Choice, Explorer, McConfig, Report, StableHasher, World};
use totoro_simnet::{
    span_report, spans, Invariant, NodeIdx, NoopSink, PendingClass, PendingSummary, RecordingSink,
    SimDuration, SimTime, Topology, TraceSink,
};

use crate::chaos::{coverage, DhtConsistency, ForestStructure, RendezvousUnique};
use crate::setups::{build_tree, echo_overlay_with_sink, topic, EchoSim};
use totoro_pubsub::ForestConfig;

/// A named, fully deterministic model-checking configuration.
#[derive(Clone, Debug)]
pub struct McScenario {
    /// Registry key (`totoro-mc --scenario <name>`).
    pub name: &'static str,
    /// One-line description for `--list`.
    pub about: &'static str,
    /// Node count (small: the state space is explored exhaustively).
    pub nodes: usize,
    /// Simulation seed for the world factory.
    pub seed: u64,
    /// Uniform one-way delay in µs (min = max: deterministic delays are
    /// a soundness requirement for the pruning — DESIGN.md §14).
    pub delay_us: u64,
    /// Forest fanout cap (small caps force deeper trees).
    pub fanout_cap: usize,
    /// Whether the tree is fully built before exploration starts
    /// (repair scenarios) or subscriptions are still in flight
    /// (join/leave scenarios).
    pub prebuilt: bool,
    /// Extra quiet time run after construction, before exploration
    /// takes over. A non-zero skew parks the start mid-tick-interval,
    /// putting the maintenance timers (rather than in-flight heartbeat
    /// deliveries) at the front of the reorder window.
    pub skew: SimDuration,
    /// Settle horizon run after the last choice before quiescent
    /// oracles are checked.
    pub settle: SimDuration,
    /// Exploration bounds handed to the engine.
    pub mc: McConfig,
}

/// The built-in scenario registry.
pub fn registry() -> Vec<McScenario> {
    vec![join_leave_4(), forest_repair_4(), maint_zombie_4()]
}

/// Looks a scenario up by name.
pub fn by_name(name: &str) -> Option<McScenario> {
    registry().into_iter().find(|s| s.name == name)
}

/// 4-node join/leave: exploration starts with all four subscriptions in
/// flight, reordering and dropping the JOIN/JoinAck traffic.
pub fn join_leave_4() -> McScenario {
    McScenario {
        name: "join-leave-4",
        about: "4-node DHT join/leave: subscriptions in flight, reorder + drop + duplicate",
        nodes: 4,
        seed: 7,
        delay_us: 500,
        fanout_cap: 4,
        prebuilt: false,
        skew: SimDuration::ZERO,
        settle: SimDuration::from_secs(30),
        mc: McConfig {
            max_depth: 6,
            fault_budget: 1,
            max_states: 20_000,
            reorder_window: 3,
            enable_drop: true,
            enable_duplicate: true,
            churn_nodes: Vec::new(),
        },
    }
}

/// 4-node forest repair: the tree is built (fanout cap 1 forces a
/// chain), then exploration injects root churn and reorders the
/// heartbeat/repair traffic.
pub fn forest_repair_4() -> McScenario {
    McScenario {
        name: "forest-repair-4",
        about: "4-node forest repair: built chain, root crash/revive + reorder + drop",
        nodes: 4,
        seed: 7,
        delay_us: 500,
        fanout_cap: 1,
        prebuilt: true,
        skew: SimDuration::ZERO,
        settle: SimDuration::from_secs(60),
        mc: McConfig {
            max_depth: 7,
            fault_budget: 2,
            max_states: 60_000,
            reorder_window: 3,
            enable_drop: true,
            enable_duplicate: false,
            churn_nodes: vec![0, 1, 2, 3],
        },
    }
}

/// 4-node maintenance-tick liveness: exploration starts mid-interval
/// (so the next round of forest ticks heads the reorder window) and
/// churns only the deepest leaf — a crash/revive that cannot disturb
/// the tree structure, isolating the revived node's timer chain.
pub fn maint_zombie_4() -> McScenario {
    McScenario {
        name: "maint-zombie-4",
        about: "4-node tick-chain liveness: leaf crash/revive around a swallowed maintenance tick",
        nodes: 4,
        seed: 7,
        delay_us: 500,
        fanout_cap: 1,
        prebuilt: true,
        skew: SimDuration::from_millis(500),
        settle: SimDuration::from_secs(60),
        mc: McConfig {
            max_depth: 4,
            fault_budget: 2,
            max_states: 20_000,
            reorder_window: 3,
            enable_drop: false,
            enable_duplicate: false,
            churn_nodes: vec![2],
        },
    }
}

/// The single MC topic (all scenarios currently explore one tree).
pub fn mc_topic() -> Id {
    topic("mc", 0)
}

/// How long the deterministic construction prefix runs before
/// exploration begins.
const BUILD_SETTLE: SimDuration = SimDuration::from_secs(20);

/// A model-checkable echo-forest world. Generic over the trace sink so
/// the counterexample renderer can re-run a schedule with recording on.
pub struct McWorld<S: TraceSink = NoopSink> {
    sim: EchoSim<S>,
    topics: Vec<Id>,
    settle: SimDuration,
    dht_config: DhtConfig,
}

impl McScenario {
    /// Builds the world at its exploration start state (deterministic:
    /// same scenario, same world, same pending keys — every time).
    pub fn build(&self) -> McWorld {
        self.build_sink(NoopSink)
    }

    /// [`McScenario::build`] with an explicit trace sink installed.
    pub fn build_sink<S: TraceSink>(&self, sink: S) -> McWorld<S> {
        let topo = Topology::uniform(self.nodes, self.delay_us, self.delay_us);
        let fconfig = ForestConfig {
            fanout_cap: self.fanout_cap,
            // The depth-ceiling cycle breaker heals at ~1 depth unit per
            // tick; the default ceiling of 64 would need a minute of sim
            // time to fire. MC worlds shrink it so the self-healing the
            // clean protocol is *supposed* to perform completes within
            // the bounded settle horizon.
            max_depth: 8,
            ..ForestConfig::default()
        };
        let mut sim = echo_overlay_with_sink(topo, self.seed, 4, fconfig, sink);
        sim.run_until(SimTime::ZERO + BUILD_SETTLE);
        let topics = vec![mc_topic()];
        let members: Vec<NodeIdx> = (0..self.nodes).collect();
        if self.prebuilt {
            let settle = sim.now() + BUILD_SETTLE;
            build_tree(&mut sim, topics[0], &members, settle);
        } else {
            // Subscriptions injected but *not* settled: the JOIN traffic
            // is pending when exploration takes over.
            for &m in &members {
                sim.with_app(m, |node, ctx| {
                    node.with_api(ctx, |forest, dht| {
                        forest.with_forest_api(dht, |_app, api| api.subscribe(topics[0]));
                    });
                });
            }
        }
        let parked = sim.now() + self.skew;
        sim.run_until(parked);
        McWorld {
            sim,
            topics,
            settle: self.settle,
            dht_config: DhtConfig::with_fanout(4),
        }
    }

    /// Runs the full exploration for this scenario.
    pub fn explore(&self) -> Report {
        let mut explorer = Explorer::new(self.mc.clone(), || self.build());
        explorer.run()
    }

    /// Replays `schedule` on a fresh world and reports what (if
    /// anything) it violates — the predicate the regression fixtures
    /// pin.
    pub fn violation_of(&self, schedule: &[Choice]) -> Option<String> {
        let mut explorer = Explorer::new(self.mc.clone(), || self.build());
        explorer.violation_of(schedule)
    }

    /// Re-runs `schedule` through a recording world and renders every
    /// causal span it produced — the counterexample report the binary
    /// prints and CI uploads (PR-4 trace machinery).
    pub fn render_counterexample(&self, schedule: &[Choice]) -> Vec<String> {
        let mut world = self.build_sink(RecordingSink::new(self.nodes));
        let mut lines = vec![format!(
            "replay ({} choices) from scenario {}:",
            schedule.len(),
            self.name
        )];
        for c in schedule {
            lines.push(format!("  {}", c.render()));
            if !world.apply(c) {
                lines.push("  ^ inapplicable (schedule/scenario mismatch)".into());
                return lines;
            }
        }
        let detail = {
            world.closeout();
            world.check(true).err()
        };
        match detail {
            Some(d) => lines.push(format!("violates: {d}")),
            None => lines.push("replay is clean (no violation)".into()),
        }
        let records = world.sim.sink().records();
        for (trace, _) in spans(records) {
            lines.push(format!("span {trace}:"));
            for l in span_report(records, trace) {
                lines.push(format!("  {l}"));
            }
        }
        lines
    }
}

impl<S: TraceSink> McWorld<S> {
    /// Read access to the wrapped simulator.
    pub fn sim(&self) -> &EchoSim<S> {
        &self.sim
    }

    /// Advances one event in natural `(time, seq)` order, bypassing the
    /// choice layer entirely — the plain sequential baseline the
    /// differential tests compare exploration replays against.
    pub fn step_natural(&mut self) -> bool {
        self.sim.step().is_some()
    }

    /// The forest maintenance-tick liveness oracle (MC-specific): every
    /// live node must keep a pending forest tick timer — the upper-layer
    /// timer chain re-arms itself on every fire and on revival, so a
    /// missing tick means the node is a maintenance zombie: up, holding
    /// tree state, but deaf to repair forever.
    fn tick_chains_alive(&mut self) -> Result<(), String> {
        let pending = self.sim.pending_summaries();
        for i in 0..self.sim.len() {
            if !self.sim.alive(i) {
                continue;
            }
            let has_tick = pending.iter().any(|p| {
                p.node == i
                    && matches!(p.class, PendingClass::Timer { token } if token == UPPER_TIMER_BASE)
            });
            if !has_tick {
                return Err(format!(
                    "TickChainAlive: node {i} is up but its forest tick chain is dead \
                     (maintenance zombie)"
                ));
            }
        }
        Ok(())
    }

    /// Crash/revive injection: schedules the transition one microsecond
    /// ahead and dispatches it immediately, so churn choices take effect
    /// atomically at the chosen point in the interleaving. The 1µs step
    /// keeps a transition strictly after any event dispatched at the
    /// current instant — a revive exactly coincident with a swallowed
    /// timer's fire time is a measure-zero artifact the timer-chain
    /// bookkeeping cannot (and should not have to) disambiguate.
    fn churn(&mut self, node: NodeIdx, down: bool) -> bool {
        if self.sim.alive(node) != down {
            // Down on a dead node / Up on a live one: inapplicable.
            return false;
        }
        let at = self.sim.now() + SimDuration::from_micros(1);
        if down {
            self.sim.schedule_down(node, at);
        } else {
            self.sim.schedule_up(node, at);
        }
        let want = if down {
            PendingClass::Down
        } else {
            PendingClass::Up
        };
        let key = self
            .sim
            .pending_summaries()
            .into_iter()
            .rev()
            .find(|p| p.node == node && p.class == want)
            .map(|p| p.key);
        match key {
            Some(k) => self.sim.dispatch_pending(k).is_some(),
            None => false,
        }
    }
}

/// Hashes one `u64` into the digest.
fn put(h: &mut StableHasher, v: u64) {
    h.write_u64(v);
}

/// Hashes a section tag, keeping layers from aliasing each other.
fn tag(h: &mut StableHasher, t: &str) {
    h.write(t.as_bytes());
    h.write_u8(0xff);
}

impl<S: TraceSink> World for McWorld<S> {
    fn pending(&mut self) -> Vec<PendingSummary> {
        self.sim.pending_summaries()
    }

    fn apply(&mut self, choice: &Choice) -> bool {
        match *choice {
            Choice::Dispatch { key } => self.sim.dispatch_pending(key).is_some(),
            Choice::Drop { key } => self.sim.drop_pending(key),
            Choice::Duplicate { key } => self.sim.duplicate_pending(key).is_some(),
            Choice::Down { node } => node < self.sim.len() && self.churn(node, true),
            Choice::Up { node } => node < self.sim.len() && self.churn(node, false),
        }
    }

    fn closeout(&mut self) {
        // Exploration can pull `now` ahead of events still pending at
        // earlier timestamps. Drain those overdue events in `(time, seq)`
        // order through the clamping dispatch hook first — the sequential
        // engine's dispatch path asserts time monotonicity.
        while let Some(head) = self.sim.pending_summaries().first().copied() {
            if head.key.time >= self.sim.now() || self.sim.dispatch_pending(head.key).is_none() {
                break;
            }
        }
        let deadline = self.sim.now() + self.settle;
        self.sim.run_until(deadline);
    }

    fn state_hash(&mut self) -> u64 {
        let mut h = StableHasher::new();
        let now = self.sim.now();
        tag(&mut h, "alive");
        for i in 0..self.sim.len() {
            h.write_u8(u8::from(self.sim.alive(i)));
        }
        for i in 0..self.sim.len() {
            let node = self.sim.app(i);
            tag(&mut h, "dht");
            put(&mut h, i as u64);
            let st = &node.state;
            let mut contacts: Vec<(u128, u64)> = st
                .routing_table
                .contacts()
                .map(|c| (c.id.0, c.addr as u64))
                .collect();
            contacts.sort_unstable();
            for (id, addr) in contacts {
                put(&mut h, (id >> 64) as u64);
                put(&mut h, id as u64);
                put(&mut h, addr);
            }
            tag(&mut h, "leaf");
            let mut leafs: Vec<(u128, u64)> = st
                .leaf_set
                .members()
                .map(|c| (c.id.0, c.addr as u64))
                .collect();
            leafs.sort_unstable();
            for (id, addr) in leafs {
                put(&mut h, id as u64);
                put(&mut h, addr);
            }
            tag(&mut h, "nbhd");
            let mut nb: Vec<u64> = st.neighborhood.members().map(|c| c.addr as u64).collect();
            nb.sort_unstable();
            for addr in nb {
                put(&mut h, addr);
            }
            tag(&mut h, "forest");
            // BTreeMap: topic-sorted iteration, already canonical.
            for m in node.upper.state.memberships() {
                put(&mut h, m.topic.0 as u64);
                put(&mut h, (m.topic.0 >> 64) as u64);
                match m.parent {
                    Some(p) => {
                        put(&mut h, 1);
                        put(&mut h, p.addr as u64);
                    }
                    None => put(&mut h, 0),
                }
                let mut children: Vec<u64> = m.children.iter().map(|c| c.addr as u64).collect();
                children.sort_unstable();
                put(&mut h, children.len() as u64);
                for c in children {
                    put(&mut h, c);
                }
                h.write_u8(u8::from(m.subscriber));
                h.write_u8(u8::from(m.is_root));
                h.write_u8(u8::from(m.joining));
                put(&mut h, u64::from(m.depth));
                // Times hashed relative to `now` so identical protocol
                // states reached at different instants can merge.
                put(&mut h, now.saturating_since(m.last_parent_seen).as_micros());
                put(&mut h, now.saturating_since(m.join_sent).as_micros());
                let mut rounds: Vec<(u64, u64, u64, u64, u8)> = m
                    .rounds
                    .iter()
                    .map(|(r, agg)| {
                        (
                            *r,
                            agg.count,
                            agg.inputs as u64,
                            agg.expected as u64,
                            u8::from(agg.flushed) << 1 | u8::from(agg.timer_armed),
                        )
                    })
                    .collect();
                rounds.sort_unstable();
                for (r, count, inputs, expected, flags) in rounds {
                    put(&mut h, r);
                    put(&mut h, count);
                    put(&mut h, inputs);
                    put(&mut h, expected);
                    h.write_u8(flags);
                }
                put(&mut h, m.last_broadcast_round.map_or(u64::MAX, |r| r));
            }
            tag(&mut h, "app");
            let mut completed = node.upper.app.completed.clone();
            completed.sort_unstable();
            for (t, round, count) in completed {
                put(&mut h, t.0 as u64);
                put(&mut h, round);
                put(&mut h, count);
            }
        }
        // Pending-event multiset: per-event sub-digests, sorted, so the
        // hash is independent of enqueue order (`seq` is excluded — it
        // is an artifact of which interleaving produced the state; see
        // DESIGN.md §14 for the soundness discussion).
        tag(&mut h, "pending");
        let mut events: Vec<u64> = self
            .sim
            .pending_summaries()
            .into_iter()
            .map(|p| {
                let mut eh = StableHasher::new();
                put(&mut eh, p.key.time.saturating_since(now).as_micros());
                put(&mut eh, p.node as u64);
                match p.class {
                    PendingClass::Start => tag(&mut eh, "start"),
                    PendingClass::Deliver {
                        src,
                        layer,
                        kind,
                        bytes,
                    } => {
                        tag(&mut eh, "deliver");
                        put(&mut eh, src as u64);
                        tag(&mut eh, layer);
                        tag(&mut eh, kind);
                        put(&mut eh, bytes as u64);
                    }
                    PendingClass::SendFailed { peer } => {
                        tag(&mut eh, "sendfailed");
                        put(&mut eh, peer as u64);
                    }
                    PendingClass::Timer { token } => {
                        tag(&mut eh, "timer");
                        put(&mut eh, token);
                    }
                    PendingClass::Down => tag(&mut eh, "down"),
                    PendingClass::Up => tag(&mut eh, "up"),
                }
                eh.finish()
            })
            .collect();
        events.sort_unstable();
        put(&mut h, events.len() as u64);
        for e in events {
            put(&mut h, e);
        }
        h.finish()
    }

    fn check(&mut self, quiescent: bool) -> Result<(), String> {
        if !quiescent {
            // Mid-exploration states are legitimately transient (JOINs in
            // flight, repairs pending); the structural oracles only make
            // sense after closeout. See DESIGN.md §14.
            return Ok(());
        }
        let named = |name: &str, r: Result<(), String>| -> Result<(), String> {
            r.map_err(|e| format!("{name}: {e}"))
        };
        let mut fs = ForestStructure::new(self.topics.clone());
        named("ForestStructure", fs.check(&self.sim))?;
        let mut rv = RendezvousUnique::new(self.topics.clone());
        named("RendezvousUnique", rv.check(&self.sim))?;
        let mut dc = DhtConsistency::new(self.dht_config);
        named("DhtConsistency", dc.check(&self.sim))?;
        named("Coverage", coverage(&self.sim, &self.topics))?;
        self.tick_chains_alive()
    }
}
