//! The chaos harness: canned fault plans, live protocol oracles, and the
//! seed-sweep explorer behind the `totoro-chaos` binary.
//!
//! A chaos trial builds a full Totoro stack (DHT overlay + pub/sub forest +
//! [`EchoApp`] aggregation) over an EUA-shaped topology, lets it settle,
//! applies one [`FaultPlan`], and then drives FL-style broadcast/aggregate
//! rounds while [`Invariant`] oracles check protocol health at every
//! checkpoint:
//!
//! * **Conservation** (always): every contribution a root aggregates is
//!   counted at most once per round — and *exactly* once for rounds
//!   broadcast after quiescence.
//! * **DhtConsistency** (after quiescence): no leaf set references a dead
//!   node, and every node's ring successor/predecessor matches the
//!   omniscient [`build_states`] oracle over the live id set.
//! * **RendezvousUnique** (after quiescence): each topic key has exactly one
//!   live node that considers itself the rendezvous (`next_hop == Deliver`),
//!   and it is the ring-closest live node.
//! * **ForestStructure** (after quiescence): one live root per tree, no
//!   parent cycles, no live node attached to a dead parent.
//! * **BoundedRecovery** (after quiescence): full subscriber coverage holds
//!   within a fixed budget of the quiescence point and never regresses.
//! * **RepairQuiescence** (after quiescence): once coverage holds, no
//!   further repair JOINs are sent (catches repair livelock).
//!
//! Violations are replayable `(plan, seed)` pairs; a failing plan is
//! greedily shrunk ([`shrink`]) to a minimal set of fault atoms before
//! reporting.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::rc::Rc;

use rand::seq::SliceRandom;

use totoro_dht::{build_states, closest_on_ring, next_hop, DhtConfig, DhtMsg, Id, NextHop};
use totoro_pubsub::{ForestConfig, ForestNode, TreeMsg};
use totoro_simnet::{
    run_with_invariants, sub_rng, ChaosStats, CheckpointConfig, ChurnSchedule, Fault, FaultKind,
    FaultPlan, Invariant, InvariantPhase, NodeIdx, NoopSink, SimDuration, SimTime, Simulator,
    TraceRecord, TraceSink, Violation,
};

use crate::scenario::{Params, Scenario, SinkSpec, Trial, TrialReport};
use crate::setups::{echo_overlay_with_sink, eua_topology, topic, Blob, EchoApp, EchoSim};

/// The canned plan names accepted by [`canned_plan`] and the CLI.
pub const PLAN_NAMES: [&str; 3] = ["loss-spike", "partition", "churn+stragglers"];

/// Settle time before any fault or round: trees build in the first seconds.
const SETTLE: SimTime = at_secs(20);
/// Gap between experiment rounds.
const BROADCAST_GAP: SimDuration = SimDuration::from_secs(10);
/// Gap between invariant checkpoints.
const CHECK_EVERY: SimDuration = SimDuration::from_secs(5);
/// Repair window granted after the last fault clears before `Quiescent`
/// oracles arm: covers DHT failure detection (~6s), leaf-set re-gossip
/// (8s period), tree parent timeout (3s) and a couple of re-join rounds.
const QUIESCE_SETTLE: SimDuration = SimDuration::from_secs(45);
/// Post-quiescence tail: enough checkpoints to age conservation records and
/// observe repair quiescence twice.
const TAIL: SimDuration = SimDuration::from_secs(35);
/// Straggler cutoff used by every chaos forest.
const AGG_TIMEOUT: SimDuration = SimDuration::from_secs(10);
/// Extra ageing past `AGG_TIMEOUT` before conservation demands equality.
const AGG_GRACE: SimDuration = SimDuration::from_secs(5);
/// How long after quiescence full coverage must be restored.
const RECOVERY_BUDGET: SimDuration = SimDuration::from_secs(10);
/// Broadcast payload size (small: rounds are about counting, not bytes).
const PAYLOAD_BYTES: usize = 2_000;
/// Tree fanout for chaos worlds.
const FANOUT: usize = 4;

const fn at_secs(s: u64) -> SimTime {
    SimTime::from_micros(s * 1_000_000)
}

fn fmt_time(t: SimTime) -> String {
    format!("{:.1}s", t.as_micros() as f64 / 1e6)
}

// ---------------------------------------------------------------------------
// World construction
// ---------------------------------------------------------------------------

/// A settled Totoro stack ready for fault injection.
pub struct ChaosWorld<S: TraceSink = NoopSink> {
    /// The simulator (DHT + forest + echo app per node).
    pub sim: EchoSim<S>,
    /// The experiment's tree topics.
    pub topics: Vec<Id>,
}

/// Builds an overlay of `nodes` nodes over an EUA topology, subscribes
/// every node to `trees` topics, and settles to [`SETTLE`].
pub fn build_world(nodes: usize, trees: usize, seed: u64) -> ChaosWorld {
    build_world_sink(nodes, trees, seed, NoopSink)
}

/// [`build_world`] with an explicit trace sink installed on the simulator.
pub fn build_world_sink<S: TraceSink>(
    nodes: usize,
    trees: usize,
    seed: u64,
    sink: S,
) -> ChaosWorld<S> {
    let topology = eua_topology(nodes, seed);
    let fconfig = ForestConfig {
        fanout_cap: FANOUT,
        agg_timeout: AGG_TIMEOUT,
        // Fanout-4 trees over a few hundred nodes stay well under depth 16;
        // a lower ceiling than the library default makes the cycle breaker
        // fire within seconds of a loop forming instead of a minute.
        max_depth: 32,
        ..ForestConfig::default()
    };
    let mut sim = echo_overlay_with_sink(topology, seed, FANOUT, fconfig, sink);
    let topics: Vec<Id> = (0..trees).map(|k| topic("chaos", k as u64)).collect();
    for &t in &topics {
        for i in 0..sim.len() {
            sim.with_app(i, |node, ctx| {
                node.with_api(ctx, |forest, dht| {
                    forest.with_forest_api(dht, |_app, api| api.subscribe(t));
                });
            })
            .expect("all nodes are up before faults");
        }
    }
    sim.run_until(SETTLE);
    ChaosWorld { sim, topics }
}

/// The live rendezvous roots of every topic (lowest index first per topic).
pub fn live_roots<S: TraceSink>(sim: &EchoSim<S>, topics: &[Id]) -> Vec<NodeIdx> {
    let mut roots = Vec::new();
    for &t in topics {
        if let Some(r) = (0..sim.len()).find(|&i| {
            sim.alive(i)
                && sim
                    .app(i)
                    .upper
                    .state
                    .membership(t)
                    .is_some_and(|m| m.is_root)
        }) {
            roots.push(r);
        }
    }
    roots.sort_unstable();
    roots.dedup();
    roots
}

// ---------------------------------------------------------------------------
// Canned plans
// ---------------------------------------------------------------------------

/// Builds one of the three canned fault plans for a settled world.
///
/// `roots` are the rendezvous roots, excluded from churn and straggler
/// selection: the canned plans exercise *repair*, not root takeover (root
/// loss promotes a new root with no demotion protocol — a known split-brain
/// hazard documented in DESIGN.md §9, deliberately out of smoke-test scope).
/// Partition windows stay under the 3s tree parent-timeout for the same
/// reason. All stochastic choices derive from `seed` side streams, never
/// from the simulator's RNG.
pub fn canned_plan<S: TraceSink>(
    name: &str,
    sim: &EchoSim<S>,
    roots: &[NodeIdx],
    seed: u64,
) -> FaultPlan {
    match name {
        "loss-spike" => FaultPlan::none()
            .with_fault(Fault::new(
                at_secs(30),
                at_secs(45),
                FaultKind::LossSpike { prob: 0.25 },
            ))
            .with_fault(Fault::new(
                at_secs(50),
                at_secs(65),
                FaultKind::LossSpike { prob: 0.10 },
            )),
        "partition" => {
            // Cut the two most populous regions, one after the other.
            let mut pop: BTreeMap<u16, usize> = BTreeMap::new();
            for i in 0..sim.len() {
                *pop.entry(sim.topology().region(i)).or_default() += 1;
            }
            let mut regions: Vec<(usize, u16)> = pop.into_iter().map(|(r, c)| (c, r)).collect();
            regions.sort_unstable_by(|a, b| b.cmp(a));
            let first = regions.first().map(|&(_, r)| r).unwrap_or(0);
            let second = regions.get(1).map(|&(_, r)| r).unwrap_or(first);
            FaultPlan::none()
                .with_fault(Fault::new(
                    at_secs(30),
                    SimTime::from_micros(32_500_000),
                    FaultKind::Partition { zones: vec![first] },
                ))
                .with_fault(Fault::new(
                    at_secs(48),
                    SimTime::from_micros(50_500_000),
                    FaultKind::Partition {
                        zones: vec![second],
                    },
                ))
                .with_fault(Fault::new(
                    at_secs(30),
                    at_secs(60),
                    FaultKind::LossSpike { prob: 0.05 },
                ))
        }
        "churn+stragglers" => {
            let candidates: Vec<NodeIdx> = (0..sim.len()).filter(|i| !roots.contains(i)).collect();
            let mut churn_rng = sub_rng(seed, "chaos-churn");
            let mass = ChurnSchedule::mass_failure(&candidates, 0.05, at_secs(40), &mut churn_rng);
            let mut churn2_rng = sub_rng(seed, "chaos-churn-continuous");
            let rolling = ChurnSchedule::continuous(
                &candidates,
                at_secs(45),
                at_secs(60),
                SimDuration::from_secs(3),
                SimDuration::from_secs(5),
                &mut churn2_rng,
            );
            let mut strag_rng = sub_rng(seed, "chaos-stragglers");
            let mut pool = candidates.clone();
            pool.shuffle(&mut strag_rng);
            let mut slow: Vec<NodeIdx> = pool.into_iter().take(sim.len() / 10).collect();
            slow.sort_unstable();
            FaultPlan::none()
                .with_fault(Fault::new(
                    at_secs(30),
                    at_secs(70),
                    FaultKind::Straggler {
                        nodes: slow,
                        factor: 8,
                    },
                ))
                .with_churn(mass.merge(rolling))
        }
        other => panic!("unknown plan {other:?} (use {})", PLAN_NAMES.join("|")),
    }
}

// ---------------------------------------------------------------------------
// Round driver and the conservation ledger
// ---------------------------------------------------------------------------

/// One experiment round recorded at broadcast time.
#[derive(Clone, Copy, Debug)]
pub struct RoundRecord {
    /// Tree topic.
    pub topic: Id,
    /// Round number.
    pub round: u64,
    /// When the root broadcast it.
    pub at: SimTime,
    /// Subscribers reachable from the root over consistent tree edges at
    /// broadcast time (the root itself contributes nothing). Every one of
    /// them receives the broadcast, so post-quiescence this is a floor on
    /// the aggregated count.
    pub expected: u64,
    /// Live subscribers (excluding the root) at broadcast time: nobody
    /// else can possibly contribute, so this is a hard ceiling — exceeding
    /// it means some update was counted twice.
    pub ceiling: u64,
    /// Whether the broadcast happened after quiescence (faults all clear).
    pub during_quiesce: bool,
}

/// Shared record of every driven round, read by [`Conservation`].
pub type RoundLedger = Rc<RefCell<Vec<RoundRecord>>>;

/// Counts subscribers reachable from `root` over *consistent* edges: parent
/// lists the child, the child points back at the parent, and the child is
/// alive. These are exactly the nodes a broadcast can reach and whose
/// contribution the root will count.
pub fn reachable_subscribers<S: TraceSink>(sim: &EchoSim<S>, t: Id, root: NodeIdx) -> u64 {
    let mut visited = vec![false; sim.len()];
    visited[root] = true;
    let mut stack = vec![root];
    let mut count = 0u64;
    while let Some(u) = stack.pop() {
        let Some(m) = sim.app(u).upper.state.membership(t) else {
            continue;
        };
        for c in &m.children {
            let child = c.addr;
            if visited[child] || !sim.alive(child) {
                continue;
            }
            let points_back = sim
                .app(child)
                .upper
                .state
                .membership(t)
                .and_then(|cm| cm.parent)
                .is_some_and(|p| p.addr == u);
            if !points_back {
                continue;
            }
            visited[child] = true;
            if sim
                .app(child)
                .upper
                .state
                .membership(t)
                .is_some_and(|cm| cm.subscriber)
            {
                count += 1;
            }
            stack.push(child);
        }
    }
    count
}

/// Drives one broadcast round on every topic and records it in the ledger.
fn drive_rounds<S: TraceSink>(
    sim: &mut EchoSim<S>,
    topics: &[Id],
    round: u64,
    quiesce_at: SimTime,
    ledger: &RoundLedger,
) {
    for &t in topics {
        let root = (0..sim.len()).find(|&i| {
            sim.alive(i)
                && sim
                    .app(i)
                    .upper
                    .state
                    .membership(t)
                    .is_some_and(|m| m.is_root)
        });
        let Some(root) = root else {
            continue; // No live root: nothing to broadcast (structure oracle will flag it).
        };
        let expected = reachable_subscribers(sim, t, root);
        let ceiling = (0..sim.len())
            .filter(|&i| {
                i != root
                    && sim.alive(i)
                    && sim
                        .app(i)
                        .upper
                        .state
                        .membership(t)
                        .is_some_and(|m| m.subscriber)
            })
            .count() as u64;
        let now = sim.now();
        ledger.borrow_mut().push(RoundRecord {
            topic: t,
            round,
            at: now,
            expected,
            ceiling,
            during_quiesce: now >= quiesce_at,
        });
        sim.with_app(root, |node, ctx| {
            node.with_api(ctx, |forest, dht| {
                forest.with_forest_api(dht, |_app, api| {
                    api.broadcast(
                        t,
                        round,
                        Blob {
                            bytes: PAYLOAD_BYTES,
                            count: 0,
                        },
                    );
                });
            });
        })
        .expect("roots are excluded from churn");
    }
}

// ---------------------------------------------------------------------------
// Oracles
// ---------------------------------------------------------------------------

/// Aggregation conservation: per `(topic, round)`, the counts flushed at
/// roots never exceed the subscribers the broadcast could reach, and match
/// exactly for post-quiescence rounds once the straggler cutoff has aged
/// out (the base topology is lossless, so nothing may go missing).
pub struct Conservation {
    ledger: RoundLedger,
}

impl Conservation {
    /// Creates the oracle over the driver's ledger.
    pub fn new(ledger: RoundLedger) -> Self {
        Conservation { ledger }
    }
}

impl<S: TraceSink> Invariant<ForestNode<EchoApp>, S> for Conservation {
    fn name(&self) -> &'static str {
        "Conservation"
    }

    fn check(&mut self, sim: &Simulator<ForestNode<EchoApp>, S>) -> Result<(), String> {
        // Completions survive node death (state is frozen, not dropped), so
        // every flush ever performed is visible here.
        let mut flushed: BTreeMap<(Id, u64), u64> = BTreeMap::new();
        for app in sim.apps() {
            for &(t, round, count) in &app.upper.app.completed {
                *flushed.entry((t, round)).or_default() += count;
            }
        }
        for rec in self.ledger.borrow().iter() {
            let got = flushed.get(&(rec.topic, rec.round)).copied().unwrap_or(0);
            if got > rec.ceiling {
                return Err(format!(
                    "round {} broadcast at {} counted {} contributions from {} live \
                     subscribers (some update counted twice)",
                    rec.round,
                    fmt_time(rec.at),
                    got,
                    rec.ceiling
                ));
            }
            let aged = sim.now() >= rec.at + AGG_TIMEOUT + AGG_GRACE;
            if rec.during_quiesce && aged && got < rec.expected {
                return Err(format!(
                    "post-quiescence round {} broadcast at {} counted only {} of {} \
                     reachable contributions",
                    rec.round,
                    fmt_time(rec.at),
                    got,
                    rec.expected
                ));
            }
        }
        Ok(())
    }
}

/// Live node list `(id, addr)` sorted by ring id.
fn live_by_id<S: TraceSink>(sim: &EchoSim<S>) -> Vec<(Id, NodeIdx)> {
    let mut live: Vec<(Id, NodeIdx)> = (0..sim.len())
        .filter(|&i| sim.alive(i))
        .map(|i| (sim.app(i).state.id(), i))
        .collect();
    live.sort_unstable();
    live
}

/// DHT routing/leaf-set consistency against the omniscient oracle: leaf
/// sets hold no dead members, and each live node's ring successor and
/// predecessor are the converged ones [`build_states`] computes over the
/// live id population.
pub struct DhtConsistency {
    config: DhtConfig,
}

impl DhtConsistency {
    /// Creates the oracle for an overlay built with `config`.
    pub fn new(config: DhtConfig) -> Self {
        DhtConsistency { config }
    }
}

impl<S: TraceSink> Invariant<ForestNode<EchoApp>, S> for DhtConsistency {
    fn name(&self) -> &'static str {
        "DhtConsistency"
    }

    fn phase(&self) -> InvariantPhase {
        InvariantPhase::Quiescent
    }

    fn check(&mut self, sim: &Simulator<ForestNode<EchoApp>, S>) -> Result<(), String> {
        let live = live_by_id(sim);
        let ids: Vec<Id> = live.iter().map(|&(id, _)| id).collect();
        let oracle = build_states(&ids, self.config);
        for (k, &(id, i)) in live.iter().enumerate() {
            let state = &sim.app(i).state;
            for c in state.leaf_set.members() {
                if !sim.alive(c.addr) {
                    return Err(format!(
                        "node {i}'s leaf set still references dead node {}",
                        c.addr
                    ));
                }
            }
            for (what, got, want) in [
                (
                    "successor",
                    state.leaf_set.successor().map(|c| c.id),
                    oracle[k].leaf_set.successor().map(|c| c.id),
                ),
                (
                    "predecessor",
                    state.leaf_set.predecessor().map(|c| c.id),
                    oracle[k].leaf_set.predecessor().map(|c| c.id),
                ),
            ] {
                if got != want {
                    return Err(format!(
                        "node {i} (id {id:?}) has {what} {got:?}, oracle expects {want:?}"
                    ));
                }
            }
        }
        Ok(())
    }
}

/// Rendezvous uniqueness: per topic key, exactly one live node routes the
/// key to itself, and it is the ring-closest live node. More than one
/// self-owner means a routed JOIN can terminate at the wrong node (the
/// split-brain precursor); zero means the topic is unroutable.
pub struct RendezvousUnique {
    topics: Vec<Id>,
}

impl RendezvousUnique {
    /// Creates the oracle over the experiment topics.
    pub fn new(topics: Vec<Id>) -> Self {
        RendezvousUnique { topics }
    }
}

impl<S: TraceSink> Invariant<ForestNode<EchoApp>, S> for RendezvousUnique {
    fn name(&self) -> &'static str {
        "RendezvousUnique"
    }

    fn phase(&self) -> InvariantPhase {
        InvariantPhase::Quiescent
    }

    fn check(&mut self, sim: &Simulator<ForestNode<EchoApp>, S>) -> Result<(), String> {
        let live = live_by_id(sim);
        let ids: Vec<Id> = live.iter().map(|&(id, _)| id).collect();
        for &key in &self.topics {
            let owners: Vec<NodeIdx> = live
                .iter()
                .filter(|&&(_, i)| matches!(next_hop(&sim.app(i).state, key), NextHop::Deliver))
                .map(|&(_, i)| i)
                .collect();
            if owners.len() != 1 {
                return Err(format!(
                    "topic {key:?} has {} live self-owners {:?}, want exactly 1",
                    owners.len(),
                    owners
                ));
            }
            let want = live[closest_on_ring(&ids, key)].1;
            if owners[0] != want {
                return Err(format!(
                    "topic {key:?} delivered at node {}, ring-closest live node is {want}",
                    owners[0]
                ));
            }
        }
        Ok(())
    }
}

/// Walks `i`'s parent chain for `t`; `Ok(true)` when it reaches a live
/// root, `Ok(false)` when it dangles (detached or dead parent), `Err` on a
/// cycle or overlong chain.
pub(crate) fn chain_reaches_root<S: TraceSink>(
    sim: &EchoSim<S>,
    t: Id,
    i: NodeIdx,
) -> Result<bool, String> {
    let mut cur = i;
    for _ in 0..=sim.len() {
        if !sim.alive(cur) {
            return Ok(false);
        }
        let Some(m) = sim.app(cur).upper.state.membership(t) else {
            return Ok(false);
        };
        if m.is_root {
            return Ok(true);
        }
        match m.parent {
            Some(p) => cur = p.addr,
            None => return Ok(false),
        }
    }
    Err(format!(
        "node {i}'s parent chain for topic {t:?} exceeds the node count (cycle)"
    ))
}

/// Forest structure: each topic has exactly one live root, parent chains
/// are acyclic, and no live node is attached to a dead parent.
pub struct ForestStructure {
    topics: Vec<Id>,
}

impl ForestStructure {
    /// Creates the oracle over the experiment topics.
    pub fn new(topics: Vec<Id>) -> Self {
        ForestStructure { topics }
    }
}

impl<S: TraceSink> Invariant<ForestNode<EchoApp>, S> for ForestStructure {
    fn name(&self) -> &'static str {
        "ForestStructure"
    }

    fn phase(&self) -> InvariantPhase {
        InvariantPhase::Quiescent
    }

    fn check(&mut self, sim: &Simulator<ForestNode<EchoApp>, S>) -> Result<(), String> {
        for &t in &self.topics {
            let roots: Vec<NodeIdx> = (0..sim.len())
                .filter(|&i| {
                    sim.alive(i)
                        && sim
                            .app(i)
                            .upper
                            .state
                            .membership(t)
                            .is_some_and(|m| m.is_root)
                })
                .collect();
            if roots.is_empty() {
                return Err(format!("topic {t:?} has no live root"));
            }
            if roots.len() > 1 {
                return Err(format!(
                    "topic {t:?} has {} live roots {:?} (split brain)",
                    roots.len(),
                    roots
                ));
            }
            for i in 0..sim.len() {
                if !sim.alive(i) {
                    continue;
                }
                let Some(m) = sim.app(i).upper.state.membership(t) else {
                    continue;
                };
                if let Some(p) = m.parent {
                    if !sim.alive(p.addr) {
                        return Err(format!(
                            "live node {i} is attached to dead parent {} for topic {t:?}",
                            p.addr
                        ));
                    }
                }
                chain_reaches_root(sim, t, i)?;
            }
        }
        Ok(())
    }
}

/// Full subscriber coverage: every live subscriber's parent chain reaches a
/// live root. `Err` carries the first uncovered node.
pub(crate) fn coverage<S: TraceSink>(sim: &EchoSim<S>, topics: &[Id]) -> Result<(), String> {
    for &t in topics {
        for i in 0..sim.len() {
            if !sim.alive(i) {
                continue;
            }
            let subscriber = sim
                .app(i)
                .upper
                .state
                .membership(t)
                .is_some_and(|m| m.subscriber);
            if !subscriber {
                continue;
            }
            match chain_reaches_root(sim, t, i) {
                Ok(true) => {}
                Ok(false) => {
                    return Err(format!(
                        "subscriber {i} of topic {t:?} is not connected to a live root"
                    ))
                }
                Err(e) => return Err(e),
            }
        }
    }
    Ok(())
}

/// Bounded recovery: full subscriber coverage must hold within
/// [`RECOVERY_BUDGET`] of quiescence and must never regress afterwards.
pub struct BoundedRecovery {
    topics: Vec<Id>,
    deadline: SimTime,
    held: bool,
}

impl BoundedRecovery {
    /// Creates the oracle; `quiesce_at` anchors the recovery deadline.
    pub fn new(topics: Vec<Id>, quiesce_at: SimTime) -> Self {
        BoundedRecovery {
            topics,
            deadline: quiesce_at + RECOVERY_BUDGET,
            held: false,
        }
    }
}

impl<S: TraceSink> Invariant<ForestNode<EchoApp>, S> for BoundedRecovery {
    fn name(&self) -> &'static str {
        "BoundedRecovery"
    }

    fn phase(&self) -> InvariantPhase {
        InvariantPhase::Quiescent
    }

    fn check(&mut self, sim: &Simulator<ForestNode<EchoApp>, S>) -> Result<(), String> {
        match coverage(sim, &self.topics) {
            Ok(()) => {
                self.held = true;
                Ok(())
            }
            Err(detail) if self.held => Err(format!("coverage regressed: {detail}")),
            Err(detail) if sim.now() >= self.deadline => Err(format!(
                "coverage not restored by {}: {detail}",
                fmt_time(self.deadline)
            )),
            Err(_) => Ok(()), // Still within the recovery budget.
        }
    }
}

/// Repair quiescence: once coverage holds at two consecutive checkpoints,
/// the fleet-wide JOIN counter must not advance between covered
/// checkpoints — a repair loop that keeps re-joining a healthy tree is
/// livelock, not liveness.
pub struct RepairQuiescence {
    topics: Vec<Id>,
    prev: Option<(bool, u64)>,
}

impl RepairQuiescence {
    /// Creates the oracle over the experiment topics.
    pub fn new(topics: Vec<Id>) -> Self {
        RepairQuiescence { topics, prev: None }
    }
}

impl<S: TraceSink> Invariant<ForestNode<EchoApp>, S> for RepairQuiescence {
    fn name(&self) -> &'static str {
        "RepairQuiescence"
    }

    fn phase(&self) -> InvariantPhase {
        InvariantPhase::Quiescent
    }

    fn check(&mut self, sim: &Simulator<ForestNode<EchoApp>, S>) -> Result<(), String> {
        let covered = coverage(sim, &self.topics).is_ok();
        let joins: u64 = sim.apps().map(|a| a.upper.state.stats.joins_sent).sum();
        let result = match self.prev {
            Some((true, prev_joins)) if covered && joins > prev_joins => Err(format!(
                "{} repair JOINs sent while coverage already held",
                joins - prev_joins
            )),
            _ => Ok(()),
        };
        self.prev = Some((covered, joins));
        result
    }
}

// ---------------------------------------------------------------------------
// Deliberate bugs (oracle validation)
// ---------------------------------------------------------------------------

/// A deliberately planted protocol bug, used to prove the oracles catch
/// real breakage (and that [`shrink`] localizes it).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BugKind {
    /// Silently drop every tree JOIN from t=25s on. JoinAck loss self-heals
    /// (heartbeat re-adoption), but orphans of a *dead* parent can only
    /// reattach via JOIN — so any churn strands them forever.
    DropRepairJoin,
}

impl BugKind {
    /// Parses a CLI bug name.
    pub fn parse(name: &str) -> Option<BugKind> {
        match name {
            "drop-repair-join" => Some(BugKind::DropRepairJoin),
            _ => None,
        }
    }

    /// The CLI name of this bug.
    pub fn name(&self) -> &'static str {
        match self {
            BugKind::DropRepairJoin => "drop-repair-join",
        }
    }
}

/// Installs `bug` on the simulator via the protocol-aware fault filter.
pub fn install_bug<S: TraceSink>(sim: &mut EchoSim<S>, bug: BugKind) {
    match bug {
        BugKind::DropRepairJoin => {
            let from = at_secs(25);
            sim.set_fault_filter(Box::new(move |now, _src, _dst, msg| {
                now >= from
                    && matches!(
                        msg,
                        DhtMsg::Route {
                            payload: TreeMsg::Join { .. },
                            ..
                        } | DhtMsg::Direct {
                            payload: TreeMsg::Join { .. },
                        }
                    )
            }));
        }
    }
}

// ---------------------------------------------------------------------------
// Trials, shrinking, and the scenario
// ---------------------------------------------------------------------------

/// Everything needed to reproduce one chaos trial.
#[derive(Clone, Debug)]
pub struct ChaosSpec {
    /// Network size.
    pub nodes: usize,
    /// Number of tree topics.
    pub trees: usize,
    /// Canned plan name (see [`PLAN_NAMES`]).
    pub plan: String,
    /// Trial seed: world construction, plan randomness, fault streams.
    pub seed: u64,
    /// Deliberately planted bug, if any.
    pub bug: Option<BugKind>,
}

/// The outcome of one chaos trial.
#[derive(Clone, Debug)]
pub struct ChaosOutcome {
    /// First violation per invariant, in checkpoint order.
    pub violations: Vec<Violation>,
    /// Labels of the plan atoms that were active.
    pub atoms: Vec<String>,
    /// Rounds driven across all topics.
    pub rounds: u64,
    /// What the injector did.
    pub chaos: ChaosStats,
    /// Simulator accounting at trial end.
    pub sim: totoro_simnet::TrialReport,
}

/// Runs one chaos trial: build + settle the world, apply the plan
/// (restricted to `mask`'s atoms when given), and drive rounds under live
/// invariant checking. Fully deterministic in `(spec, mask)`.
pub fn run_chaos_trial(spec: &ChaosSpec, mask: Option<&[bool]>) -> ChaosOutcome {
    run_chaos_trial_sink(spec, mask, NoopSink).0
}

/// [`run_chaos_trial`] with an explicit trace sink: the sink observes the
/// whole trial (settle included) and is returned so callers can drain its
/// records — this is how `totoro-chaos --replay --trace` reconstructs the
/// message chain behind a violation.
pub fn run_chaos_trial_sink<S: TraceSink>(
    spec: &ChaosSpec,
    mask: Option<&[bool]>,
    sink: S,
) -> (ChaosOutcome, S) {
    let ChaosWorld { mut sim, topics } = build_world_sink(spec.nodes, spec.trees, spec.seed, sink);
    let roots = live_roots(&sim, &topics);
    let full_plan = canned_plan(&spec.plan, &sim, &roots, spec.seed);
    let plan = match mask {
        Some(mask) => full_plan.retain_atoms(mask),
        None => full_plan.clone(),
    };
    let quiesce_at = plan.last_fault_clear().max(SETTLE) + QUIESCE_SETTLE;
    let cfg = CheckpointConfig {
        every: CHECK_EVERY,
        end: quiesce_at + TAIL,
        quiesce_at,
    };
    plan.apply(&mut sim, spec.seed);
    if let Some(bug) = spec.bug {
        install_bug(&mut sim, bug);
    }

    let ledger: RoundLedger = Rc::new(RefCell::new(Vec::new()));
    let mut invariants: Vec<Box<dyn Invariant<ForestNode<EchoApp>, S>>> = vec![
        Box::new(Conservation::new(Rc::clone(&ledger))),
        Box::new(DhtConsistency::new(DhtConfig::with_fanout(FANOUT))),
        Box::new(RendezvousUnique::new(topics.clone())),
        Box::new(ForestStructure::new(topics.clone())),
        Box::new(BoundedRecovery::new(topics.clone(), quiesce_at)),
        Box::new(RepairQuiescence::new(topics.clone())),
    ];
    let mut round = 0u64;
    let mut next_broadcast = SETTLE + CHECK_EVERY;
    let ledger_for_driver = Rc::clone(&ledger);
    let violations = run_with_invariants(&mut sim, &cfg, &mut invariants, |sim| {
        if sim.now() >= next_broadcast {
            drive_rounds(sim, &topics, round, quiesce_at, &ledger_for_driver);
            round += 1;
            next_broadcast += BROADCAST_GAP;
        }
    });
    let outcome = ChaosOutcome {
        violations,
        atoms: plan.describe(),
        rounds: round * topics.len() as u64,
        chaos: sim.chaos().map(|c| c.stats).unwrap_or_default(),
        sim: totoro_simnet::TrialReport::capture(&sim),
    };
    (outcome, sim.into_sink())
}

/// The result of shrinking a failing plan.
#[derive(Clone, Debug)]
pub struct ShrinkResult {
    /// Labels of the minimal failing atom set.
    pub atoms: Vec<String>,
    /// Trials executed (including the initial full run).
    pub runs: usize,
}

/// Greedily shrinks a failing plan: repeatedly drop one atom, re-run, and
/// keep the drop if any invariant still fires, until no single removal
/// preserves the failure. Any planted bug stays installed throughout, so
/// the result is the minimal fault set that *triggers* the bug.
pub fn shrink(spec: &ChaosSpec) -> ShrinkResult {
    let full = run_chaos_trial(spec, None);
    let mut runs = 1;
    if full.violations.is_empty() {
        return ShrinkResult {
            atoms: full.atoms,
            runs,
        };
    }
    let mut mask = vec![true; full.atoms.len()];
    loop {
        let mut changed = false;
        for i in 0..mask.len() {
            if !mask[i] {
                continue;
            }
            let mut candidate = mask.clone();
            candidate[i] = false;
            runs += 1;
            if !run_chaos_trial(spec, Some(&candidate))
                .violations
                .is_empty()
            {
                mask = candidate;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    let atoms = full
        .atoms
        .into_iter()
        .zip(&mask)
        .filter(|(_, &keep)| keep)
        .map(|(a, _)| a)
        .collect();
    ShrinkResult { atoms, runs }
}

/// The seed-sweep chaos scenario: N seeds × M plans through the PR-1 trial
/// engine, rendered as a per-plan violation table plus replayable
/// violation/shrink reports.
pub struct ChaosScenario;

/// Parses the comma-separated plan list, validating names eagerly.
fn parse_plans(spec: &str) -> Vec<String> {
    let plans: Vec<String> = spec
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(str::to_string)
        .collect();
    for p in &plans {
        assert!(
            PLAN_NAMES.contains(&p.as_str()),
            "unknown plan {p:?} (use {})",
            PLAN_NAMES.join("|")
        );
    }
    assert!(!plans.is_empty(), "no plans selected");
    plans
}

fn spec_for(trial: &Trial) -> ChaosSpec {
    ChaosSpec {
        nodes: trial.get_usize("nodes"),
        trees: trial.get_usize("trees"),
        plan: trial.setup.clone(),
        seed: trial.seed,
        bug: match trial.get("bug") {
            0 => None,
            1 => Some(BugKind::DropRepairJoin),
            other => panic!("unknown bug code {other}"),
        },
    }
}

impl Scenario for ChaosScenario {
    fn name(&self) -> &'static str {
        "chaos"
    }

    fn description(&self) -> &'static str {
        "seed-sweep fault injection with live protocol-invariant oracles"
    }

    fn default_params(&self) -> Params {
        Params {
            nodes: 200,
            ..Params::default()
        }
    }

    fn trials(&self, params: &Params) -> Vec<Trial> {
        let seeds = params.extra_usize("seeds", 16);
        let trees = params.extra_usize("trees", 3);
        let plans = parse_plans(&params.extra_str("plans", &PLAN_NAMES.join(",")));
        let bug = match params.extra("inject-bug") {
            None => 0,
            Some(name) => {
                BugKind::parse(name).unwrap_or_else(|| panic!("unknown bug {name:?}"));
                1
            }
        };
        let mut trials = Vec::new();
        for plan in &plans {
            for s in 0..seeds {
                trials.push(
                    Trial::new(plan, params.seed + s as u64)
                        .with("nodes", params.nodes as u64)
                        .with("trees", trees as u64)
                        .with("bug", bug),
                );
            }
        }
        Trial::seal(trials)
    }

    fn run_with_sink(
        &self,
        trial: &Trial,
        _sink: &SinkSpec,
    ) -> (TrialReport, Option<Vec<TraceRecord>>) {
        let spec = spec_for(trial);
        let outcome = run_chaos_trial(&spec, None);
        let mut report = TrialReport::for_trial(trial);
        report.push_metric("violations", outcome.violations.len() as f64);
        report.push_metric("rounds", outcome.rounds as f64);
        report.push_metric("chaos_dropped", outcome.chaos.dropped as f64);
        report.push_metric("chaos_duplicated", outcome.chaos.duplicated as f64);
        report.push_metric("chaos_delayed", outcome.chaos.delayed as f64);
        report.sim = outcome.sim;
        if !outcome.violations.is_empty() {
            for v in &outcome.violations {
                report.push_note(format!(
                    "VIOLATION plan={} seed={}: {} @ {}: {}",
                    spec.plan,
                    spec.seed,
                    v.invariant,
                    fmt_time(v.at),
                    v.detail
                ));
            }
            report.push_note(format!(
                "replay: totoro-chaos --replay {}:{} --nodes {} --trees {}{}",
                spec.plan,
                spec.seed,
                spec.nodes,
                spec.trees,
                spec.bug
                    .map(|b| format!(" --inject-bug {}", b.name()))
                    .unwrap_or_default()
            ));
            let shrunk = shrink(&spec);
            report.push_metric("shrunk_atoms", shrunk.atoms.len() as f64);
            report.push_note(format!(
                "shrunk to {} atom(s) in {} runs: [{}]",
                shrunk.atoms.len(),
                shrunk.runs,
                shrunk.atoms.join("; ")
            ));
        }
        (report, None)
    }

    fn render(&self, params: &Params, reports: &[TrialReport]) -> String {
        let seeds = params.extra_usize("seeds", 16);
        let trees = params.extra_usize("trees", 3);
        let plans = parse_plans(&params.extra_str("plans", &PLAN_NAMES.join(",")));
        let mut out = String::new();
        let _ = writeln!(
            out,
            "chaos sweep: nodes={} trees={} seeds={} plans={}",
            params.nodes,
            trees,
            seeds,
            plans.join(",")
        );
        let _ = writeln!(
            out,
            "{:<20} {:>6} {:>11} {:>8}",
            "plan", "seeds", "violations", "rounds"
        );
        let mut total = 0u64;
        for plan in &plans {
            let of_plan: Vec<&TrialReport> = reports.iter().filter(|r| &r.setup == plan).collect();
            let violations: u64 = of_plan.iter().map(|r| r.metric("violations") as u64).sum();
            let rounds: u64 = of_plan.iter().map(|r| r.metric("rounds") as u64).sum();
            total += violations;
            let _ = writeln!(
                out,
                "{:<20} {:>6} {:>11} {:>8}",
                plan,
                of_plan.len(),
                violations,
                rounds
            );
        }
        for r in reports {
            for note in &r.notes {
                let _ = writeln!(out, "{note}");
            }
        }
        let _ = writeln!(out, "total violations: {total}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_names_round_trip_through_parser() {
        let plans = parse_plans(&PLAN_NAMES.join(","));
        assert_eq!(plans.len(), 3);
        assert_eq!(
            parse_plans(" loss-spike ,partition"),
            ["loss-spike", "partition"]
        );
    }

    #[test]
    #[should_panic(expected = "unknown plan")]
    fn unknown_plan_is_rejected() {
        parse_plans("loss-spike,bogus");
    }

    #[test]
    fn bug_names_round_trip() {
        let bug = BugKind::parse("drop-repair-join").unwrap();
        assert_eq!(BugKind::parse(bug.name()), Some(bug));
        assert_eq!(BugKind::parse("nope"), None);
    }

    #[test]
    fn canned_plans_have_expected_atoms() {
        let ChaosWorld { sim, topics } = build_world(60, 1, 7);
        let roots = live_roots(&sim, &topics);
        assert_eq!(roots.len(), 1);
        assert_eq!(canned_plan("loss-spike", &sim, &roots, 7).atom_count(), 2);
        assert_eq!(canned_plan("partition", &sim, &roots, 7).atom_count(), 3);
        let churn = canned_plan("churn+stragglers", &sim, &roots, 7);
        assert_eq!(churn.atom_count(), 2);
        assert!(!churn.churn().is_empty());
        // Roots are never churned or slowed.
        assert!(churn
            .churn()
            .events()
            .iter()
            .all(|e| !roots.contains(&e.node)));
    }

    #[test]
    fn settled_world_passes_every_invariant_without_faults() {
        let spec = ChaosSpec {
            nodes: 60,
            trees: 1,
            plan: "loss-spike".to_string(),
            seed: 11,
            bug: None,
        };
        // Mask out every atom: a fault-free run must be violation-free.
        let outcome = run_chaos_trial(&spec, Some(&[false, false]));
        assert!(
            outcome.violations.is_empty(),
            "fault-free run violated: {:?}",
            outcome.violations
        );
        assert!(outcome.rounds > 0);
        assert_eq!(outcome.chaos, ChaosStats::default());
    }
}
