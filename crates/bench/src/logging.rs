//! A minimal leveled stderr logger for the bench binaries.
//!
//! Scenario output (tables, JSON) goes to **stdout** and is golden-tested
//! byte-for-byte; everything human-facing — progress, warnings, errors —
//! goes through here to **stderr** so verbosity flags can never perturb a
//! golden. Levels: `--quiet` silences progress, `--verbose` adds debug
//! detail, errors always print.

use std::sync::atomic::{AtomicU8, Ordering};

/// How chatty stderr is.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Errors only (`--quiet`).
    Quiet = 0,
    /// Errors and progress (default).
    Normal = 1,
    /// Everything (`--verbose`).
    Verbose = 2,
}

static LEVEL: AtomicU8 = AtomicU8::new(Level::Normal as u8);

/// Installs the global verbosity (call once from `main` after flag parsing).
pub fn set_level(level: Level) {
    // det: allow(ordering: host-only stderr verbosity flag; written once in main before any sim runs and never read back into simulated state)
    LEVEL.store(level as u8, Ordering::Relaxed);
}

/// Resolves `--quiet`/`--verbose` flags into a [`Level`] (quiet wins).
pub fn level_from_flags(quiet: bool, verbose: bool) -> Level {
    if quiet {
        Level::Quiet
    } else if verbose {
        Level::Verbose
    } else {
        Level::Normal
    }
}

fn enabled(at: Level) -> bool {
    // det: allow(ordering: host-only stderr verbosity flag; gates log lines only, never simulated state or golden bytes)
    LEVEL.load(Ordering::Relaxed) >= at as u8
}

/// Unconditional error line on stderr.
pub fn error(msg: impl std::fmt::Display) {
    eprintln!("error: {msg}");
}

/// Progress line on stderr; suppressed by `--quiet`.
pub fn info(msg: impl std::fmt::Display) {
    if enabled(Level::Normal) {
        eprintln!("{msg}");
    }
}

/// Debug detail on stderr; printed only with `--verbose`.
pub fn debug(msg: impl std::fmt::Display) {
    if enabled(Level::Verbose) {
        eprintln!("debug: {msg}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiet_beats_verbose_and_default_is_normal() {
        assert_eq!(level_from_flags(false, false), Level::Normal);
        assert_eq!(level_from_flags(true, true), Level::Quiet);
        assert_eq!(level_from_flags(false, true), Level::Verbose);
    }
}
