//! # totoro-bench
//!
//! The experiment harness that regenerates every table and figure of the
//! paper's evaluation (§7), built around the [`scenario::Scenario`] API:
//! each artifact expands into independent [`scenario::Trial`]s that the
//! parallel trial engine runs on `--jobs` worker threads with bit-identical
//! output regardless of worker count.
//!
//! The `totoro-bench` binary dispatches scenarios by name (`totoro-bench
//! fig7 --nodes 300 --jobs 8`; `--list` enumerates them). The historical
//! per-figure binaries remain as thin shims over the same registrations:
//!
//! | Scenario | Shim binary | Paper artifact |
//! |----------|-------------|----------------|
//! | `fig5` | `fig5_scalability` | Fig. 5a–d: zones, master distribution, branch balance |
//! | `fig6` | `fig6_dissemination` | Fig. 6a–c: dissemination/aggregation time vs N, fanout; O(log N) hops |
//! | `fig7` | `fig7_traffic` | Fig. 7: per-node TCP/UDP traffic vs number of trees |
//! | `table3` | `table3_speedup` | Table 3: time-to-accuracy speedups vs OpenFL/FedScale |
//! | `fig8`, `fig9` | `fig8_fig9_tta` | Figs. 8–9: time-to-accuracy curves |
//! | `fig10` | `fig10_regret` | Fig. 10: regret comparison of path-planning algorithms |
//! | `fig11` | `fig11_path_freq` | Fig. 11: path-selection frequencies |
//! | `fig12` | `fig12_recovery` | Fig. 12: failure-recovery time vs number of trees |
//! | `fig13` | `fig13_overhead` | Fig. 13a–b: CPU and memory overhead vs OpenFL |
//! | `ablation` | `ablation_aggregation` | In-network aggregation vs star ablation |
//!
//! Criterion micro-benchmarks live under `benches/`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chaos;
pub mod logging;
pub mod mc;
pub mod report;
pub mod scenario;
pub mod scenarios;
pub mod setups;
pub mod simcore;
pub mod traceview;
