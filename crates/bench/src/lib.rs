//! # totoro-bench
//!
//! The experiment harness that regenerates every table and figure of the
//! paper's evaluation (§7). One binary per artifact:
//!
//! | Binary | Paper artifact |
//! |--------|----------------|
//! | `fig5_scalability` | Fig. 5a–d: zones, master distribution, branch balance |
//! | `fig6_dissemination` | Fig. 6a–c: dissemination/aggregation time vs N, fanout; O(log N) hops |
//! | `fig7_traffic` | Fig. 7: per-node TCP/UDP traffic vs number of trees |
//! | `table3_speedup` | Table 3: time-to-accuracy speedups vs OpenFL/FedScale |
//! | `fig8_fig9_tta` | Figs. 8–9: time-to-accuracy curves |
//! | `fig10_regret` | Fig. 10: regret comparison of path-planning algorithms |
//! | `fig11_path_freq` | Fig. 11: path-selection frequencies |
//! | `fig12_recovery` | Fig. 12: failure-recovery time vs number of trees |
//! | `fig13_overhead` | Fig. 13a–b: CPU and memory overhead vs OpenFL |
//!
//! Criterion micro-benchmarks live under `benches/`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod report;
pub mod setups;
