//! Simulator hot-path workloads shared by the `sim_core` criterion group
//! and the `simcore` perf scenario.
//!
//! Each workload is a deterministic pure function from sizes to a finished
//! [`Simulator`] run, returning the number of events processed; callers
//! wrap them in wall-clock timing to derive events/sec. Three pressure
//! points are covered:
//!
//! * **event churn** — many tiny messages hopping a ring: the raw cost of
//!   the heap + slab + scratch event loop;
//! * **multicast fan-out** — a model-sized payload disseminating down a
//!   k-ary tree, in both clone-per-child (the pre-optimization baseline)
//!   and [`Shared`] (reference-counted) flavors;
//! * **timer storm** — thousands of concurrently armed timers: heap
//!   pressure with zero-byte payloads.

use totoro_simnet::geo::{eua_regions_scaled, generate};
use totoro_simnet::{
    sub_rng, Application, Ctx, EngineProfile, EventQueue, LatencyModel, NodeIdx, NoopSink, Payload,
    RecordingSink, ShardedSim, Shared, SimDuration, Simulator, Topology, TraceRecord, WallProfile,
    WheelQueue,
};

/// Fixed per-hop delay for every workload: `Topology::uniform` with
/// `min == max` and jitter 0 never touches the RNG, so measured time is
/// pure event-loop cost.
fn flat_topology(n: usize) -> Topology {
    Topology::uniform(n, 100, 100)
}

// ---------------------------------------------------------------- churn --

#[derive(Clone)]
struct Hop(u64);

impl Payload for Hop {
    fn size_bytes(&self) -> usize {
        16
    }
}

struct ChurnNode {
    n: usize,
}

impl Application for ChurnNode {
    type Msg = Hop;

    fn on_message(&mut self, ctx: &mut Ctx<'_, Hop>, _from: NodeIdx, msg: Hop) {
        if msg.0 > 0 {
            ctx.send((ctx.me() + 1) % self.n, Hop(msg.0 - 1));
        }
    }
}

/// Circulates `tokens` tokens around an `n`-ring, each making `hops + 1`
/// deliveries. Returns events processed (exactly
/// `n` starts + `tokens × (hops + 1)` deliveries).
pub fn run_event_churn(n: usize, tokens: usize, hops: u64) -> u64 {
    run_event_churn_on::<WheelQueue>(n, tokens, hops)
}

/// [`run_event_churn`] on an explicit [`EventQueue`] implementation — the
/// heap-vs-wheel comparison entry point.
pub fn run_event_churn_on<Q: EventQueue>(n: usize, tokens: usize, hops: u64) -> u64 {
    let mut sim =
        Simulator::<ChurnNode, NoopSink, Q>::with_queue(flat_topology(n), 1, NoopSink, |_| {
            ChurnNode { n }
        });
    let tokens = tokens.min(n);
    for t in 0..tokens {
        let _ = sim.with_app(t, |_node, ctx| {
            let next = (ctx.me() + 1) % n;
            ctx.send(next, Hop(hops));
        });
    }
    assert!(sim.run_until_quiet(u64::MAX));
    sim.events_processed()
}

/// [`run_event_churn_on`] with a [`RecordingSink`] installed: returns the
/// buffered trace records instead of the event count. The event stream —
/// and therefore the trace — is byte-identical across [`EventQueue`]
/// implementations; `totoro-trace diff` on a wheel-vs-heap pair proves it.
pub fn run_event_churn_traced<Q: EventQueue>(
    n: usize,
    tokens: usize,
    hops: u64,
) -> Vec<TraceRecord> {
    let mut sim = Simulator::<ChurnNode, RecordingSink, Q>::with_queue(
        flat_topology(n),
        1,
        RecordingSink::new(0),
        |_| ChurnNode { n },
    );
    let tokens = tokens.min(n);
    for t in 0..tokens {
        let _ = sim.with_app(t, |_node, ctx| {
            let next = (ctx.me() + 1) % n;
            ctx.send(next, Hop(hops));
        });
    }
    assert!(sim.run_until_quiet(u64::MAX));
    sim.into_sink().take_records()
}

/// [`run_event_churn`] with engine self-profiling enabled: returns the
/// deterministic [`EngineProfile`] of the run. Kept separate from the
/// timed entry points so profiling bookkeeping never shadows a
/// measurement.
pub fn profile_event_churn(n: usize, tokens: usize, hops: u64) -> EngineProfile {
    let mut sim = Simulator::<ChurnNode, NoopSink, WheelQueue>::with_queue(
        flat_topology(n),
        1,
        NoopSink,
        |_| ChurnNode { n },
    );
    sim.enable_profiling();
    let tokens = tokens.min(n);
    for t in 0..tokens {
        let _ = sim.with_app(t, |_node, ctx| {
            let next = (ctx.me() + 1) % n;
            ctx.send(next, Hop(hops));
        });
    }
    assert!(sim.run_until_quiet(u64::MAX));
    sim.engine_profile().expect("profiling enabled")
}

// ------------------------------------------------------------ multicast --

/// Multicast payload: either deep-copied per child (the pre-optimization
/// baseline) or reference-counted via [`Shared`].
#[derive(Clone)]
enum McMsg {
    Cloned(Vec<f32>),
    Shared(Shared<Vec<f32>>),
}

impl McMsg {
    fn weights(&self) -> usize {
        match self {
            McMsg::Cloned(w) => w.len(),
            McMsg::Shared(w) => w.len(),
        }
    }
}

impl Payload for McMsg {
    fn size_bytes(&self) -> usize {
        16 + self.weights() * 4
    }
}

struct TreeNode {
    fanout: usize,
    n: usize,
    received: u64,
}

impl TreeNode {
    fn forward(&self, ctx: &mut Ctx<'_, McMsg>, msg: &McMsg) {
        let first = ctx.me() * self.fanout + 1;
        for c in first..(first + self.fanout).min(self.n) {
            // The measured operation: for `Cloned` this deep-copies the
            // weights per child; for `Shared` it bumps a refcount.
            ctx.send(c, msg.clone());
        }
    }
}

impl Application for TreeNode {
    type Msg = McMsg;

    fn on_message(&mut self, ctx: &mut Ctx<'_, McMsg>, _from: NodeIdx, msg: McMsg) {
        self.received += 1;
        self.forward(ctx, &msg);
    }
}

/// Disseminates a `weights`-float payload down a complete `fanout`-ary tree
/// of `n` nodes, `rounds` times; `shared` picks the payload flavor.
/// Returns events processed. Panics if any node missed a round.
pub fn run_multicast(n: usize, fanout: usize, weights: usize, rounds: u64, shared: bool) -> u64 {
    let mut sim = Simulator::new(flat_topology(n), 2, |_| TreeNode {
        fanout,
        n,
        received: 0,
    });
    for _ in 0..rounds {
        let _ = sim.with_app(0, |node, ctx| {
            let w = vec![0.5f32; weights];
            let msg = if shared {
                McMsg::Shared(Shared::new(w))
            } else {
                McMsg::Cloned(w)
            };
            node.forward(ctx, &msg);
        });
        assert!(sim.run_until_quiet(u64::MAX));
    }
    for i in 1..n {
        assert_eq!(sim.app(i).received, rounds, "node {i} missed a round");
    }
    sim.events_processed()
}

// ---------------------------------------------------------- timer storm --

struct TimerNode {
    timers: u64,
    refires: u64,
    fired: u64,
}

#[derive(Clone)]
struct Nil;

impl Payload for Nil {
    fn size_bytes(&self) -> usize {
        0
    }
}

impl Application for TimerNode {
    type Msg = Nil;

    fn on_start(&mut self, ctx: &mut Ctx<'_, Nil>) {
        for t in 0..self.timers {
            // Stagger phases so firings interleave across nodes.
            let phase = (ctx.me() as u64 * 37 + t * 101) % 1_000;
            ctx.set_timer(SimDuration::from_micros(phase.saturating_add(100)), t);
        }
    }

    fn on_message(&mut self, _ctx: &mut Ctx<'_, Nil>, _from: NodeIdx, _msg: Nil) {}

    fn on_timer(&mut self, ctx: &mut Ctx<'_, Nil>, token: u64) {
        self.fired += 1;
        if self.fired < self.timers * self.refires {
            ctx.set_timer(
                SimDuration::from_micros((token % 97).saturating_add(500)),
                token,
            );
        }
    }
}

/// Arms `timers` timers on each of `n` nodes; every firing re-arms until
/// the node has fired `timers × refires` times, then the still-armed
/// timers drain (so each node fires `timers + timers × refires − 1` times
/// in total). Returns events processed.
pub fn run_timer_storm(n: usize, timers: u64, refires: u64) -> u64 {
    run_timer_storm_on::<WheelQueue>(n, timers, refires)
}

/// [`run_timer_storm`] on an explicit [`EventQueue`] implementation — the
/// heap-vs-wheel comparison entry point.
pub fn run_timer_storm_on<Q: EventQueue>(n: usize, timers: u64, refires: u64) -> u64 {
    let mut sim =
        Simulator::<TimerNode, NoopSink, Q>::with_queue(flat_topology(n), 3, NoopSink, |_| {
            TimerNode {
                timers,
                refires,
                fired: 0,
            }
        });
    assert!(sim.run_until_quiet(u64::MAX));
    sim.events_processed()
}

// --------------------------------------------------------- million node --

/// Builds the EUA-geography topology for the `million_node` workload:
/// the paper's 12 Australian regions scaled to `n` nodes, fixed
/// geographic latency (500 µs base + 5 µs/km, zero jitter, zero loss) so
/// the topology is RNG-free and therefore shardable
/// ([`Topology::delay_is_deterministic`]).
pub fn build_eua_topology(n: usize, seed: u64) -> Topology {
    let regions = eua_regions_scaled(n);
    let mut rng = sub_rng(seed, "million-node-geo");
    let placed = generate(&regions, &mut rng);
    Topology::from_placements(
        &placed,
        LatencyModel::Geo {
            base_us: 500,
            per_km_us: 5.0,
        },
    )
    .with_jitter(0.0)
}

/// Precomputes the gossip routing for [`run_million_node`]: each node's
/// successor on its zone's ring, and a mirror node in the next populated
/// zone for the periodic cross-zone beat.
pub fn zone_rings(topo: &Topology) -> (Vec<u32>, Vec<u32>) {
    let n = topo.len();
    let nregions = topo.num_regions().max(1);
    let mut members: Vec<Vec<u32>> = vec![Vec::new(); nregions];
    for i in 0..n {
        members[topo.region(i) as usize].push(i as u32);
    }
    let populated: Vec<usize> = (0..nregions).filter(|&r| !members[r].is_empty()).collect();
    let mut next = vec![0u32; n];
    let mut cross = vec![0u32; n];
    for (pi, &r) in populated.iter().enumerate() {
        let ring = &members[r];
        let other = &members[populated[(pi + 1) % populated.len()]];
        for (j, &g) in ring.iter().enumerate() {
            next[g as usize] = ring[(j + 1) % ring.len()];
            cross[g as usize] = other[g as usize % other.len()];
        }
    }
    (next, cross)
}

/// Zone gossip: a 1 kHz beat timer per node; every beat sends one small
/// message around the zone ring, and every 16th node also pings its
/// cross-zone mirror. Per-node state is 20 bytes.
struct GossipNode {
    next: u32,
    cross: u32,
    rounds: u32,
    round: u32,
    recvd: u32,
}

#[derive(Clone)]
struct Beat;

impl Payload for Beat {
    fn size_bytes(&self) -> usize {
        16
    }
}

impl Application for GossipNode {
    type Msg = Beat;

    fn on_start(&mut self, ctx: &mut Ctx<'_, Beat>) {
        // Stagger beat phases so firings spread across the millisecond.
        let phase = 1 + (ctx.me() as u64 * 37) % 1_000;
        ctx.set_timer(SimDuration::from_micros(phase), 0);
    }

    fn on_message(&mut self, _ctx: &mut Ctx<'_, Beat>, _from: NodeIdx, _msg: Beat) {
        self.recvd += 1;
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, Beat>, _token: u64) {
        ctx.send(self.next as usize, Beat);
        if ctx.me() % 16 == 0 {
            ctx.send(self.cross as usize, Beat);
        }
        self.round += 1;
        if self.round < self.rounds {
            ctx.set_timer(SimDuration::from_micros(1_000), 0);
        }
    }
}

/// Result of one [`run_million_node`] execution.
pub struct MillionRun {
    /// Events processed (deterministic: `n` starts + `n × rounds` timer
    /// firings + one delivery per ring send + one per cross-zone send).
    pub events: u64,
    /// Heap bytes of per-node simulator state
    /// ([`ShardedSim::state_bytes`]) — the memory-diet metric.
    pub state_bytes: usize,
}

/// Runs the zone-gossip workload over a prebuilt EUA topology on
/// `shards` shards. Topology construction is excluded (callers build it
/// once, outside timing); the clone below is a flat memcpy, negligible
/// against millions of events.
pub fn run_million_node(
    topo: &Topology,
    next: &[u32],
    cross: &[u32],
    rounds: u32,
    shards: usize,
    seed: u64,
) -> MillionRun {
    let n = topo.len();
    let mut sim = ShardedSim::new(topo.clone(), seed, shards, |i| GossipNode {
        next: next[i],
        cross: cross[i],
        rounds,
        round: 0,
        recvd: 0,
    })
    .expect("EUA topology is shardable");
    sim.run_to_quiescence();
    let expected =
        n as u64 * u64::from(rounds) * 2 + n as u64 + n.div_ceil(16) as u64 * u64::from(rounds);
    assert_eq!(sim.events_processed(), expected, "gossip lost events");
    MillionRun {
        events: sim.events_processed(),
        state_bytes: sim.state_bytes(),
    }
}

/// [`run_million_node`] with engine self-profiling (and, when `wall` is
/// set, wall-clock phase timing) enabled. The [`EngineProfile`] is
/// derived from simulated state only, so it is identical for every
/// `shards` value; the optional [`WallProfile`] is real elapsed time and
/// belongs on a nondeterministic side channel, never on golden stdout.
pub fn run_million_node_profiled(
    topo: &Topology,
    next: &[u32],
    cross: &[u32],
    rounds: u32,
    shards: usize,
    seed: u64,
    wall: bool,
) -> (MillionRun, EngineProfile, Option<WallProfile>) {
    let n = topo.len();
    let mut sim = ShardedSim::new(topo.clone(), seed, shards, |i| GossipNode {
        next: next[i],
        cross: cross[i],
        rounds,
        round: 0,
        recvd: 0,
    })
    .expect("EUA topology is shardable")
    .with_profiling();
    if wall {
        sim = sim.with_wall_profiling();
    }
    sim.run_to_quiescence();
    let expected =
        n as u64 * u64::from(rounds) * 2 + n as u64 + n.div_ceil(16) as u64 * u64::from(rounds);
    assert_eq!(sim.events_processed(), expected, "gossip lost events");
    let profile = sim.engine_profile().expect("profiling enabled");
    let wall_profile = sim.wall_profile();
    (
        MillionRun {
            events: sim.events_processed(),
            state_bytes: sim.state_bytes(),
        },
        profile,
        wall_profile,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn million_node_is_shard_invariant_and_exact() {
        let topo = build_eua_topology(600, 42);
        let (next, cross) = zone_rings(&topo);
        let n = topo.len() as u64;
        let r1 = run_million_node(&topo, &next, &cross, 3, 1, 42);
        let r4 = run_million_node(&topo, &next, &cross, 3, 4, 42);
        assert_eq!(r1.events, r4.events);
        assert_eq!(r1.events, n + n * 6 + (n as usize).div_ceil(16) as u64 * 3);
        assert!(r1.state_bytes > 0);
    }

    #[test]
    fn zone_rings_stay_inside_zones() {
        let topo = build_eua_topology(500, 7);
        let (next, cross) = zone_rings(&topo);
        for i in 0..topo.len() {
            assert_eq!(topo.region(i), topo.region(next[i] as usize));
            assert_ne!(topo.region(i), topo.region(cross[i] as usize));
        }
    }

    #[test]
    fn churn_event_count_is_exact() {
        let events = run_event_churn(50, 4, 100);
        assert_eq!(events, 50 + 4 * 101);
    }

    #[test]
    fn multicast_flavors_process_identical_events() {
        let cloned = run_multicast(85, 4, 256, 2, false);
        let shared = run_multicast(85, 4, 256, 2, true);
        // The sharing optimization must be invisible to the event stream.
        assert_eq!(cloned, shared);
        // n starts + 2 rounds × (n - 1) deliveries.
        assert_eq!(cloned, 85 + 2 * 84);
    }

    #[test]
    fn timer_storm_fires_every_timer() {
        let events = run_timer_storm(20, 8, 3);
        // n starts + n × (timers + timers × refires − 1) firings.
        assert_eq!(events, 20 + 20 * (8 + 8 * 3 - 1));
    }

    #[test]
    fn traced_churn_is_queue_invariant() {
        use totoro_simnet::{jsonl_trace, HeapQueue};
        let wheel = run_event_churn_traced::<WheelQueue>(50, 4, 40);
        let heap = run_event_churn_traced::<HeapQueue>(50, 4, 40);
        assert!(!wheel.is_empty());
        assert_eq!(jsonl_trace(&wheel), jsonl_trace(&heap));
    }

    #[test]
    fn churn_profile_is_deterministic_and_counts_events() {
        let a = profile_event_churn(50, 4, 40);
        let b = profile_event_churn(50, 4, 40);
        assert_eq!(a.to_json(), b.to_json());
        assert!(a.groups > 0);
        let ratio = a.singleton_ratio();
        assert!((0.0..=1.0).contains(&ratio), "ratio = {ratio}");
    }

    #[test]
    fn million_node_profile_is_shard_invariant() {
        let topo = build_eua_topology(600, 42);
        let (next, cross) = zone_rings(&topo);
        let (r1, p1, w1) = run_million_node_profiled(&topo, &next, &cross, 3, 1, 42, false);
        let (r4, p4, w4) = run_million_node_profiled(&topo, &next, &cross, 3, 4, 42, true);
        assert_eq!(r1.events, r4.events);
        assert_eq!(
            p1.to_json(),
            p4.to_json(),
            "engine profile must not see shard count"
        );
        assert!(w1.is_none());
        let w4 = w4.expect("wall profiling requested");
        assert_eq!(w4.shards, 4);
        assert!(p1.windows > 0);
        assert!(p1.remote_msgs > 0);
    }

    #[test]
    fn queue_choice_is_invisible_to_event_counts() {
        use totoro_simnet::HeapQueue;
        assert_eq!(
            run_event_churn_on::<HeapQueue>(50, 4, 100),
            run_event_churn_on::<WheelQueue>(50, 4, 100),
        );
        assert_eq!(
            run_timer_storm_on::<HeapQueue>(20, 8, 3),
            run_timer_storm_on::<WheelQueue>(20, 8, 3),
        );
    }
}
