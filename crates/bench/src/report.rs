//! Plain-text rendering helpers shared by the scenarios.
//!
//! Every figure/table scenario renders (a) a human-readable markdown table
//! mirroring the paper's artifact and (b) machine-readable CSV blocks
//! (`# csv:<name>` sentinel lines) that downstream plotting can consume.
//! All helpers build and return `String`s — scenarios never print directly,
//! which is what makes rendered output comparable byte-for-byte across
//! `--jobs` settings.

/// Writes rendered report text to stdout, verbatim.
///
/// This is the *only* stdout write in the workspace outside tests: stdout
/// is the golden surface (byte-compared by `crates/bench/tests/golden.rs`
/// across `--jobs`, seeds, and trace sinks), so every byte that reaches it
/// funnels through here. The determinism linter (`totoro-detlint`, rule
/// DET003 `golden-surface`) enforces this statically; human-facing chatter
/// belongs on stderr via [`crate::logging`].
pub fn emit(text: impl std::fmt::Display) {
    print!("{text}");
}

/// [`emit`] with a trailing newline, for usage/listing lines that are not
/// golden-compared but still belong to a binary's stdout contract.
pub fn emitln(text: impl std::fmt::Display) {
    println!("{text}");
}

/// Renders a markdown table.
pub fn markdown_table(title: &str, headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    out.push_str(&format!("\n## {title}\n\n"));
    out.push_str(&format!("| {} |\n", headers.join(" | ")));
    out.push_str(&format!(
        "|{}|\n",
        headers.iter().map(|_| "---").collect::<Vec<_>>().join("|")
    ));
    for row in rows {
        out.push_str(&format!("| {} |\n", row.join(" | ")));
    }
    out
}

/// Renders a CSV block with a sentinel header for scripted extraction.
pub fn csv_block(name: &str, headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    out.push_str(&format!("\n# csv:{name}\n"));
    out.push_str(&format!("{}\n", headers.join(",")));
    for row in rows {
        out.push_str(&format!("{}\n", row.join(",")));
    }
    out.push_str(&format!("# end-csv:{name}\n"));
    out
}

/// Formats a float with 2 decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Formats a float with 3 decimals.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Formats a speedup as the paper does ("3.7x").
pub fn speedup(x: f64) -> String {
    format!("{x:.1}x")
}

/// Simple descriptive statistics of a sample.
#[derive(Clone, Copy, Debug, Default)]
pub struct Stats {
    /// Sample size.
    pub n: usize,
    /// Mean.
    pub mean: f64,
    /// Standard deviation (population).
    pub sd: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
}

/// Computes [`Stats`] over `xs`.
pub fn stats(xs: &[f64]) -> Stats {
    if xs.is_empty() {
        return Stats::default();
    }
    let n = xs.len();
    let mean = xs.iter().sum::<f64>() / n as f64;
    let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
    Stats {
        n,
        mean,
        sd: var.sqrt(),
        min: xs.iter().copied().fold(f64::INFINITY, f64::min),
        max: xs.iter().copied().fold(f64::NEG_INFINITY, f64::max),
    }
}

/// Nearest-rank percentile of `xs` (not necessarily sorted).
pub fn percentile(xs: &[f64], p: f64) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.total_cmp(b));
    let rank = ((p.clamp(0.0, 100.0) / 100.0) * (v.len() - 1) as f64).round() as usize;
    v[rank]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_basic() {
        let s = stats(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.n, 4);
        assert!((s.mean - 2.5).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert_eq!(stats(&[]).n, 0);
    }

    #[test]
    fn percentile_nearest_rank() {
        let xs = vec![10.0, 20.0, 30.0, 40.0, 50.0];
        assert_eq!(percentile(&xs, 0.0), 10.0);
        assert_eq!(percentile(&xs, 50.0), 30.0);
        assert_eq!(percentile(&xs, 100.0), 50.0);
    }

    #[test]
    fn tables_render_to_strings() {
        let rows = vec![vec!["1".to_string(), "2".to_string()]];
        let md = markdown_table("T", &["a", "b"], &rows);
        assert!(md.contains("## T"));
        assert!(md.contains("| 1 | 2 |"));
        let csv = csv_block("t", &["a", "b"], &rows);
        assert!(csv.starts_with("\n# csv:t\n"));
        assert!(csv.ends_with("# end-csv:t\n"));
        assert!(csv.contains("1,2"));
    }
}
