//! Plain-text reporting helpers shared by the experiment binaries.
//!
//! Every figure/table binary prints (a) a human-readable markdown table
//! mirroring the paper's artifact and (b) machine-readable CSV blocks
//! (`# csv:<name>` sentinel lines) that downstream plotting can consume.

/// Prints a markdown table.
pub fn markdown_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n## {title}\n");
    println!("| {} |", headers.join(" | "));
    println!("|{}|", headers.iter().map(|_| "---").collect::<Vec<_>>().join("|"));
    for row in rows {
        println!("| {} |", row.join(" | "));
    }
}

/// Prints a CSV block with a sentinel header for scripted extraction.
pub fn csv_block(name: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n# csv:{name}");
    println!("{}", headers.join(","));
    for row in rows {
        println!("{}", row.join(","));
    }
    println!("# end-csv:{name}");
}

/// Formats a float with 2 decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Formats a float with 3 decimals.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Formats a speedup as the paper does ("3.7x").
pub fn speedup(x: f64) -> String {
    format!("{x:.1}x")
}

/// Simple descriptive statistics of a sample.
#[derive(Clone, Copy, Debug, Default)]
pub struct Stats {
    /// Sample size.
    pub n: usize,
    /// Mean.
    pub mean: f64,
    /// Standard deviation (population).
    pub sd: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
}

/// Computes [`Stats`] over `xs`.
pub fn stats(xs: &[f64]) -> Stats {
    if xs.is_empty() {
        return Stats::default();
    }
    let n = xs.len();
    let mean = xs.iter().sum::<f64>() / n as f64;
    let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
    Stats {
        n,
        mean,
        sd: var.sqrt(),
        min: xs.iter().copied().fold(f64::INFINITY, f64::min),
        max: xs.iter().copied().fold(f64::NEG_INFINITY, f64::max),
    }
}

/// Nearest-rank percentile of `xs` (not necessarily sorted).
pub fn percentile(xs: &[f64], p: f64) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.total_cmp(b));
    let rank = ((p.clamp(0.0, 100.0) / 100.0) * (v.len() - 1) as f64).round() as usize;
    v[rank]
}

/// Parses `--key value` style CLI overrides with a default.
pub fn arg_usize(args: &[String], key: &str, default: usize) -> usize {
    arg_value(args, key)
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Parses a `--key value` flag as u64.
pub fn arg_u64(args: &[String], key: &str, default: u64) -> u64 {
    arg_value(args, key)
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Parses a `--key value` flag as String.
pub fn arg_string(args: &[String], key: &str, default: &str) -> String {
    arg_value(args, key).unwrap_or_else(|| default.to_string())
}

fn arg_value(args: &[String], key: &str) -> Option<String> {
    let flag = format!("--{key}");
    args.iter()
        .position(|a| *a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_basic() {
        let s = stats(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.n, 4);
        assert!((s.mean - 2.5).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert_eq!(stats(&[]).n, 0);
    }

    #[test]
    fn percentile_nearest_rank() {
        let xs = vec![10.0, 20.0, 30.0, 40.0, 50.0];
        assert_eq!(percentile(&xs, 0.0), 10.0);
        assert_eq!(percentile(&xs, 50.0), 30.0);
        assert_eq!(percentile(&xs, 100.0), 50.0);
    }

    #[test]
    fn arg_parsing() {
        let args: Vec<String> = ["--nodes", "100", "--dataset", "speech"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(arg_usize(&args, "nodes", 5), 100);
        assert_eq!(arg_usize(&args, "missing", 7), 7);
        assert_eq!(arg_string(&args, "dataset", "femnist"), "speech");
        assert_eq!(arg_u64(&args, "nodes", 0), 100);
    }
}
