//! Criterion micro-benchmarks for the hot paths of every substrate:
//! DHT routing, tree operations, KL-UCB planning, ML kernels, and
//! serialization.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::Rng;

use totoro_bandit::{layered, LinkStats, Policy, Router};
use totoro_dht::{build_states, implicit_route_hops, next_hop, random_ids, DhtConfig, Id, NextHop};
use totoro_ml::{quantize_int8, top_k, weights_to_bytes, Mlp, ModelUpdate, TaskGenerator};
use totoro_simnet::sub_rng;

fn bench_dht_routing(c: &mut Criterion) {
    let mut group = c.benchmark_group("dht_routing");
    for &n in &[1_000usize, 10_000] {
        let mut rng = sub_rng(1, "bench-ids");
        let ids = random_ids(n, &mut rng);
        let states = build_states(&ids, DhtConfig::default());
        group.bench_with_input(BenchmarkId::new("full_route", n), &n, |b, _| {
            let mut k = 0u128;
            b.iter(|| {
                k = k.wrapping_mul(6364136223846793005).wrapping_add(1);
                let key = Id::new(k ^ 0xDEAD_BEEF_CAFE);
                let mut cur = (k as usize) % n;
                let mut hops = 0;
                loop {
                    match next_hop(&states[cur], key) {
                        NextHop::Deliver => break,
                        NextHop::Forward(c) => cur = c.addr,
                    }
                    hops += 1;
                    if hops > 64 {
                        break;
                    }
                }
                std::hint::black_box(cur)
            });
        });
        group.bench_with_input(BenchmarkId::new("table_lookup", n), &n, |b, _| {
            let mut k = 0u128;
            b.iter(|| {
                k = k.wrapping_add(0x9E37_79B9);
                std::hint::black_box(next_hop(&states[k as usize % n], Id::new(k << 64)))
            });
        });
    }
    group.finish();

    let mut group = c.benchmark_group("implicit_routing");
    for &n in &[100_000usize, 1_000_000] {
        let mut rng = sub_rng(2, "bench-ids");
        let ids = random_ids(n, &mut rng);
        group.bench_with_input(BenchmarkId::new("hops", n), &n, |b, _| {
            let mut k = 0u128;
            b.iter(|| {
                k = k.wrapping_mul(6364136223846793005).wrapping_add(99);
                std::hint::black_box(implicit_route_hops(&ids, (k as usize) % n, Id::new(k), 4))
            });
        });
    }
    group.finish();
}

fn bench_overlay_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("overlay_build");
    group.sample_size(10);
    for &n in &[1_000usize, 10_000] {
        let mut rng = sub_rng(3, "bench-ids");
        let ids = random_ids(n, &mut rng);
        group.bench_with_input(BenchmarkId::new("bulk_states", n), &n, |b, _| {
            b.iter(|| std::hint::black_box(build_states(&ids, DhtConfig::default()).len()));
        });
    }
    group.finish();
}

fn bench_klucb(c: &mut Criterion) {
    c.bench_function("klucb/omega_index", |b| {
        let mut stats = LinkStats::default();
        for i in 0..500 {
            stats.record(i % 3 != 0);
        }
        let mut t = 2.0f64;
        b.iter(|| {
            t += 1.0;
            std::hint::black_box(stats.omega(t.ln()))
        });
    });

    c.bench_function("klucb/route_packet_3x3", |b| {
        let mut rng = sub_rng(4, "bench-graph");
        let (g, s, d) = layered(3, 3, (0.2, 0.9), &mut rng);
        let mut router = Router::new(Policy::HopByHopKlUcb, &g);
        let mut prng = sub_rng(5, "bench-pkts");
        b.iter(|| std::hint::black_box(router.route_packet(&g, s, d, &mut prng).delay));
    });
}

fn bench_ml(c: &mut Criterion) {
    let mut rng = sub_rng(6, "bench-ml");
    let generator = TaskGenerator::new(totoro_ml::femnist_like(), &mut rng);
    let shard = generator.test_set(64, &mut rng);
    let mut model = Mlp::new(&[40, 48, 62], &mut rng);

    c.bench_function("ml/train_epoch_64x40", |b| {
        b.iter(|| std::hint::black_box(model.train_epoch(&shard.xs, &shard.ys, 20, 0.1, None)));
    });

    let w = model.to_weights();
    c.bench_function("ml/fedavg_merge_5k", |b| {
        let u1 = ModelUpdate::from_client(&w, 10);
        let u2 = ModelUpdate::from_client(&w, 20);
        b.iter(|| {
            let mut acc = u1.clone();
            acc.merge(&u2);
            std::hint::black_box(acc.samples)
        });
    });

    c.bench_function("ml/serialize_5k", |b| {
        b.iter(|| std::hint::black_box(weights_to_bytes(&w).len()));
    });

    c.bench_function("ml/topk_compress_5k", |b| {
        b.iter(|| std::hint::black_box(top_k(&w, 200).indices.len()));
    });

    c.bench_function("ml/int8_quantize_5k", |b| {
        b.iter(|| std::hint::black_box(quantize_int8(&w).q.len()));
    });
}

fn bench_sha1(c: &mut Criterion) {
    let mut rng = sub_rng(7, "bench-sha");
    let data: Vec<u8> = (0..1024).map(|_| rng.gen()).collect();
    c.bench_function("hash/sha1_1k", |b| {
        b.iter(|| std::hint::black_box(totoro_dht::sha1(&data)[0]));
    });
}

criterion_group!(
    benches,
    bench_dht_routing,
    bench_overlay_build,
    bench_klucb,
    bench_ml,
    bench_sha1
);
criterion_main!(benches);
