//! Criterion micro-benchmarks for the simulator hot path: event churn,
//! multicast fan-out (clone-per-child vs shared payload), and timer storms.
//!
//! The workloads are the same deterministic functions the `simcore`
//! scenario times end-to-end (`totoro_bench::simcore`); here criterion
//! samples them at smaller sizes for quick per-commit comparisons.

use criterion::{criterion_group, criterion_main, Criterion};

use totoro_bench::simcore::{run_event_churn, run_multicast, run_timer_storm};

fn bench_event_churn(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_core");
    group.sample_size(10);
    group.bench_with_input(
        criterion::BenchmarkId::new("event_churn", "n=500,hops=1000"),
        &(),
        |b, _| {
            b.iter(|| std::hint::black_box(run_event_churn(500, 16, 1_000)));
        },
    );
    group.finish();
}

fn bench_multicast(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_core");
    group.sample_size(10);
    // 64 Ki floats (256 KB) down a fanout-16 depth-2 tree; the clone
    // variant deep-copies the payload per child, the shared variant bumps
    // refcounts. The events/sec gap is the win the tentpole claims.
    group.bench_with_input(
        criterion::BenchmarkId::new("multicast_clone", "n=273,f=16,256KB"),
        &(),
        |b, _| {
            b.iter(|| std::hint::black_box(run_multicast(273, 16, 65_536, 1, false)));
        },
    );
    group.bench_with_input(
        criterion::BenchmarkId::new("multicast_shared", "n=273,f=16,256KB"),
        &(),
        |b, _| {
            b.iter(|| std::hint::black_box(run_multicast(273, 16, 65_536, 1, true)));
        },
    );
    group.finish();
}

fn bench_timer_storm(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_core");
    group.sample_size(10);
    group.bench_with_input(
        criterion::BenchmarkId::new("timer_storm", "n=500,t=16,r=5"),
        &(),
        |b, _| {
            b.iter(|| std::hint::black_box(run_timer_storm(500, 16, 5)));
        },
    );
    group.finish();
}

criterion_group!(
    sim_core,
    bench_event_churn,
    bench_multicast,
    bench_timer_storm
);
criterion_main!(sim_core);
