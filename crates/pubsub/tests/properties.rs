//! Property-based tests: in-network aggregation must be shape-independent.

use proptest::prelude::*;
use totoro_pubsub::TreeData;
use totoro_simnet::Payload;

/// A test payload: weighted sums with counts (structurally the same as the
/// FL engine's update type).
#[derive(Clone, Debug, PartialEq)]
struct W {
    v: Vec<f64>,
    n: u64,
}

impl Payload for W {
    fn size_bytes(&self) -> usize {
        self.v.len() * 8
    }
}

impl TreeData for W {
    fn combine(&mut self, other: &Self) {
        if self.v.is_empty() {
            self.v = other.v.clone();
            self.n = other.n;
            return;
        }
        for (a, b) in self.v.iter_mut().zip(&other.v) {
            *a += b;
        }
        self.n += other.n;
    }
}

/// Folds contributions along an arbitrary binary tree shape encoded by a
/// sequence of merge choices, and checks the result equals the flat sum.
fn tree_fold(leaves: &[W], shape: &[bool]) -> W {
    let mut stack: Vec<W> = Vec::new();
    let mut shape_iter = shape.iter().copied().cycle();
    for leaf in leaves {
        stack.push(leaf.clone());
        // Randomly merge adjacent partials as an interior node would.
        while stack.len() >= 2 && shape_iter.next().unwrap_or(false) {
            let b = stack.pop().expect("len >= 2");
            let mut a = stack.pop().expect("len >= 2");
            a.combine(&b);
            stack.push(a);
        }
    }
    let mut acc = stack.pop().expect("non-empty");
    while let Some(p) = stack.pop() {
        acc.combine(&p);
    }
    acc
}

proptest! {
    /// Any aggregation-tree shape produces the same total as a flat fold —
    /// the invariant that lets interior nodes partially aggregate (§4.3).
    #[test]
    fn aggregation_is_shape_independent(
        leaves in prop::collection::vec(
            (prop::collection::vec(-100.0f64..100.0, 3), 1u64..50),
            1..20,
        ),
        shape in prop::collection::vec(any::<bool>(), 1..64),
    ) {
        let leaves: Vec<W> = leaves
            .into_iter()
            .map(|(v, n)| W { v, n })
            .collect();
        let tree = tree_fold(&leaves, &shape);
        let mut flat = W { v: vec![0.0; 3], n: 0 };
        for leaf in &leaves {
            flat.combine(leaf);
        }
        prop_assert_eq!(tree.n, flat.n);
        for (a, b) in tree.v.iter().zip(&flat.v) {
            prop_assert!((a - b).abs() < 1e-6 * (1.0 + a.abs()));
        }
    }

    /// Membership child tables behave like sets keyed by address.
    #[test]
    fn children_table_is_a_set(ops in prop::collection::vec((0usize..10, any::<bool>()), 0..60)) {
        use totoro_dht::{Contact, Id};
        use totoro_pubsub::Membership;
        use totoro_simnet::SimTime;
        let mut m: Membership<W> = Membership::new(Id::ZERO, SimTime::ZERO);
        let mut model = std::collections::BTreeSet::new();
        for (addr, add) in ops {
            if add {
                m.add_child(Contact { id: Id::new(addr as u128 + 1), addr });
                model.insert(addr);
            } else {
                m.remove_child(addr);
                model.remove(&addr);
            }
            prop_assert_eq!(m.children.len(), model.len());
        }
        let mut got: Vec<usize> = m.children.iter().map(|c| c.addr).collect();
        got.sort_unstable();
        let want: Vec<usize> = model.into_iter().collect();
        prop_assert_eq!(got, want);
    }
}
