//! End-to-end forest tests: tree construction by JOIN-path union,
//! broadcast, in-network aggregation, fanout capping, and repair.

use totoro_dht::{app_id, spawn_overlay, DhtConfig, Id};
use totoro_pubsub::{Forest, ForestApi, ForestApp, ForestConfig, ForestNode, TreeData};
use totoro_simnet::{Payload, SimDuration, SimTime, Simulator, Topology};

/// Tree data: a sum plus the number of contributions folded in.
#[derive(Clone, Debug, PartialEq)]
struct Sum {
    value: f64,
}

impl Payload for Sum {
    fn size_bytes(&self) -> usize {
        8
    }
}

impl TreeData for Sum {
    fn combine(&mut self, other: &Self) {
        self.value += other.value;
    }
}

/// Test app: every subscriber contributes its address + 1 as a value after
/// 50 ms of simulated "training"; the root records completed rounds.
struct TestApp {
    addr: usize,
    models_seen: Vec<(Id, u64)>,
    aggregated: Vec<(Id, u64, f64, u64)>,
    roots_gained: Vec<Id>,
}

impl TestApp {
    fn new(addr: usize) -> Self {
        TestApp {
            addr,
            models_seen: Vec::new(),
            aggregated: Vec::new(),
            roots_gained: Vec::new(),
        }
    }
}

impl ForestApp for TestApp {
    type Data = Sum;

    fn on_model(
        &mut self,
        _api: &mut ForestApi<'_, '_, '_, Sum>,
        topic: Id,
        round: u64,
        _data: &Sum,
    ) -> Option<(Sum, SimDuration)> {
        self.models_seen.push((topic, round));
        Some((
            Sum {
                value: self.addr as f64 + 1.0,
            },
            SimDuration::from_millis(50),
        ))
    }

    fn on_aggregated(
        &mut self,
        _api: &mut ForestApi<'_, '_, '_, Sum>,
        topic: Id,
        round: u64,
        data: Sum,
        count: u64,
    ) {
        self.aggregated.push((topic, round, data.value, count));
    }

    fn on_became_root(&mut self, _api: &mut ForestApi<'_, '_, '_, Sum>, topic: Id) {
        self.roots_gained.push(topic);
    }
}

type Node = ForestNode<TestApp>;

fn build(n: usize, seed: u64, fconfig: ForestConfig) -> Simulator<Node> {
    let topology = Topology::uniform(n, 500, 2_000);
    let (sim, _ids) = spawn_overlay(topology, seed, DhtConfig::default(), None, |i| {
        Forest::new(TestApp::new(i), fconfig)
    });
    sim
}

fn subscribe_all(sim: &mut Simulator<Node>, topic: Id, members: &[usize]) {
    for &i in members {
        sim.with_app(i, |node, ctx| {
            node.with_api(ctx, |forest, dht| {
                forest.with_forest_api(dht, |_app, api| api.subscribe(topic));
            });
        });
    }
}

fn run_secs(sim: &mut Simulator<Node>, to: u64) {
    sim.run_until(SimTime::from_micros(to * 1_000_000));
}

fn find_root(sim: &Simulator<Node>, topic: Id) -> Option<usize> {
    (0..sim.len()).find(|&i| {
        sim.app(i)
            .upper
            .state
            .membership(topic)
            .is_some_and(|m| m.is_root)
    })
}

/// All nodes in `node`'s subtree (inclusive), via the children tables.
fn subtree_of(sim: &Simulator<Node>, topic: Id, node: usize) -> Vec<usize> {
    let mut out = vec![node];
    let mut i = 0;
    while i < out.len() {
        let cur = out[i];
        i += 1;
        if let Some(m) = sim.app(cur).upper.state.membership(topic) {
            out.extend(m.children.iter().map(|c| c.addr));
        }
    }
    out
}

fn broadcast_from(sim: &mut Simulator<Node>, root: usize, topic: Id, round: u64) {
    sim.with_app(root, |node, ctx| {
        node.with_api(ctx, |forest, dht| {
            forest.with_forest_api(dht, |_app, api| {
                api.broadcast(topic, round, Sum { value: 0.0 });
            });
        });
    })
    .expect("the broadcasting root is up");
}

#[test]
fn join_paths_union_into_a_single_tree() {
    let mut sim = build(64, 1, ForestConfig::default());
    let topic = app_id("test-app", "alice", 7);
    let members: Vec<usize> = (0..64).collect();
    subscribe_all(&mut sim, topic, &members);
    run_secs(&mut sim, 20);

    // Exactly one root.
    let roots: Vec<usize> = (0..64)
        .filter(|&i| {
            sim.app(i)
                .upper
                .state
                .membership(topic)
                .is_some_and(|m| m.is_root)
        })
        .collect();
    assert_eq!(roots.len(), 1, "roots = {roots:?}");
    let root = roots[0];

    // Every subscriber is attached, and following parents reaches the root
    // without cycles.
    for i in 0..64 {
        let m = sim.app(i).upper.state.membership(topic).expect("member");
        assert!(m.attached(), "node {i} detached");
        let mut cur = i;
        let mut steps = 0;
        while cur != root {
            let m = sim.app(cur).upper.state.membership(topic).unwrap();
            cur = m.parent.expect("non-root has parent").addr;
            steps += 1;
            assert!(steps <= 64, "cycle while walking to root from {i}");
        }
    }

    // Parent/child tables are mutually consistent.
    for i in 0..64 {
        let m = sim.app(i).upper.state.membership(topic).unwrap();
        if let Some(p) = m.parent {
            let pm = sim.app(p.addr).upper.state.membership(topic).unwrap();
            assert!(
                pm.children.iter().any(|c| c.addr == i),
                "parent {} does not list child {i}",
                p.addr
            );
        }
    }
}

#[test]
fn root_is_the_rendezvous_node() {
    let topology = Topology::uniform(50, 500, 2_000);
    let (mut sim, ids) = spawn_overlay(topology, 2, DhtConfig::default(), None, |i| {
        Forest::new(TestApp::new(i), ForestConfig::default())
    });
    let topic = app_id("rendezvous-check", "bob", 1);
    subscribe_all(&mut sim, topic, &(0..50).collect::<Vec<_>>());
    run_secs(&mut sim, 20);
    let root = find_root(&sim, topic).expect("a root exists");
    let want = totoro_dht::closest_on_ring(&ids, topic);
    assert_eq!(root, want, "root is not the numerically closest node");
}

#[test]
fn broadcast_reaches_every_subscriber_and_aggregation_sums() {
    let n = 48;
    let mut sim = build(n, 3, ForestConfig::default());
    let topic = app_id("agg-app", "carol", 2);
    let members: Vec<usize> = (0..n).collect();
    subscribe_all(&mut sim, topic, &members);
    run_secs(&mut sim, 20);
    let root = find_root(&sim, topic).unwrap();

    sim.with_app(root, |node, ctx| {
        node.with_api(ctx, |forest, dht| {
            forest.with_forest_api(dht, |_app, api| {
                api.broadcast(topic, 1, Sum { value: 0.0 });
            });
        });
    });
    run_secs(&mut sim, 120);

    // Every subscriber except possibly the root saw the model.
    let seen = (0..n)
        .filter(|&i| sim.app(i).upper.app.models_seen.contains(&(topic, 1)))
        .count();
    assert!(seen >= n - 1, "only {seen}/{n} subscribers saw the model");

    // The root aggregated the sum of (addr + 1) over all contributors.
    let aggs = &sim.app(root).upper.app.aggregated;
    assert!(!aggs.is_empty(), "no aggregation completed at the root");
    let &(t, r, value, count) = aggs.first().unwrap();
    assert_eq!((t, r), (topic, 1));
    assert_eq!(count as usize, seen, "count mismatch");
    let expected: f64 = (0..n)
        .filter(|&i| sim.app(i).upper.app.models_seen.contains(&(topic, 1)))
        .map(|i| i as f64 + 1.0)
        .sum();
    assert!(
        (value - expected).abs() < 1e-9,
        "aggregated {value}, expected {expected}"
    );
}

#[test]
fn multiple_trees_have_distinct_roots_spread_over_nodes() {
    let n = 100;
    let mut sim = build(n, 4, ForestConfig::default());
    let topics: Vec<Id> = (0..30)
        .map(|k| app_id(&format!("app-{k}"), "dora", k))
        .collect();
    for t in &topics {
        subscribe_all(&mut sim, *t, &(0..n).collect::<Vec<_>>());
    }
    run_secs(&mut sim, 40);

    let mut roots_per_node = vec![0usize; n];
    for t in &topics {
        let root = find_root(&sim, *t).expect("root exists");
        roots_per_node[root] += 1;
    }
    // Load balance: with 30 random AppIds on 100 nodes, no node should be
    // the master of more than a handful of applications.
    let max = *roots_per_node.iter().max().unwrap();
    assert!(max <= 4, "a single node owns {max} masters");
    let total: usize = roots_per_node.iter().sum();
    assert_eq!(total, topics.len());
}

#[test]
fn fanout_cap_pushes_joins_down() {
    let n = 80;
    let cap = 4;
    let fconfig = ForestConfig {
        fanout_cap: cap,
        ..ForestConfig::default()
    };
    let mut sim = build(n, 5, fconfig);
    let topic = app_id("capped", "erin", 3);
    subscribe_all(&mut sim, topic, &(0..n).collect::<Vec<_>>());
    run_secs(&mut sim, 30);

    for i in 0..n {
        if let Some(m) = sim.app(i).upper.state.membership(topic) {
            assert!(
                m.children.len() <= cap,
                "node {i} has {} children (cap {cap})",
                m.children.len()
            );
        }
    }
    // Everyone still attached.
    for i in 0..n {
        assert!(
            sim.app(i)
                .upper
                .state
                .membership(topic)
                .is_some_and(|m| m.attached()),
            "node {i} detached under fanout cap"
        );
    }
    let pushdowns: u64 = (0..n).map(|i| sim.app(i).upper.state.stats.pushdowns).sum();
    assert!(pushdowns > 0, "cap never triggered a push-down");
}

#[test]
fn parent_failure_triggers_rejoin_and_repair() {
    let n = 60;
    let mut sim = build(n, 6, ForestConfig::default());
    let topic = app_id("repair", "frank", 4);
    subscribe_all(&mut sim, topic, &(0..n).collect::<Vec<_>>());
    run_secs(&mut sim, 20);
    let root = find_root(&sim, topic).unwrap();

    // Pick an interior (non-root) node with children and kill it.
    let victim = (0..n)
        .find(|&i| {
            i != root
                && sim
                    .app(i)
                    .upper
                    .state
                    .membership(topic)
                    .is_some_and(|m| !m.children.is_empty())
        })
        .expect("an interior node exists");
    let orphans: Vec<usize> = sim
        .app(victim)
        .upper
        .state
        .membership(topic)
        .unwrap()
        .children
        .iter()
        .map(|c| c.addr)
        .collect();
    sim.schedule_down(victim, SimTime::from_micros(21_000_000));
    run_secs(&mut sim, 90);

    for o in orphans {
        let m = sim.app(o).upper.state.membership(topic).unwrap();
        assert!(m.attached(), "orphan {o} still detached after repair");
        assert_ne!(
            m.parent.map(|p| p.addr),
            Some(victim),
            "orphan {o} still points at the dead parent"
        );
        // The repair episode is recorded with a completion time.
        let repaired = sim
            .app(o)
            .upper
            .state
            .repair_events
            .iter()
            .any(|e| e.topic == topic && e.reattached.is_some());
        assert!(repaired, "orphan {o} has no completed repair event");
    }
}

#[test]
fn root_failure_promotes_a_new_master() {
    let n = 40;
    let mut sim = build(n, 7, ForestConfig::default());
    let topic = app_id("takeover", "gary", 5);
    subscribe_all(&mut sim, topic, &(0..n).collect::<Vec<_>>());
    run_secs(&mut sim, 20);
    let old_root = find_root(&sim, topic).unwrap();
    sim.schedule_down(old_root, SimTime::from_micros(21_000_000));
    run_secs(&mut sim, 150);

    let new_root = (0..n).filter(|&i| i != old_root).find(|&i| {
        sim.app(i)
            .upper
            .state
            .membership(topic)
            .is_some_and(|m| m.is_root)
    });
    let new_root = new_root.expect("no replacement master was promoted");
    assert!(
        sim.app(new_root).upper.app.roots_gained.contains(&topic),
        "on_became_root not delivered to the new master"
    );
}

#[test]
fn rounds_with_stragglers_flush_by_timeout() {
    let n = 30;
    let fconfig = ForestConfig {
        agg_timeout: SimDuration::from_secs(5),
        ..ForestConfig::default()
    };
    let mut sim = build(n, 8, fconfig);
    let topic = app_id("stragglers", "hana", 6);
    subscribe_all(&mut sim, topic, &(0..n).collect::<Vec<_>>());
    run_secs(&mut sim, 20);
    let root = find_root(&sim, topic).unwrap();

    // Kill a leaf right before the broadcast: its contribution never
    // arrives, yet the root must still complete by timeout.
    let leaf = (0..n)
        .find(|&i| {
            i != root
                && sim
                    .app(i)
                    .upper
                    .state
                    .membership(topic)
                    .is_some_and(|m| m.children.is_empty())
        })
        .expect("a leaf exists");
    sim.schedule_down(leaf, SimTime::from_micros(20_500_000));

    sim.with_app(root, |node, ctx| {
        node.with_api(ctx, |forest, dht| {
            forest.with_forest_api(dht, |_app, api| {
                api.broadcast(topic, 1, Sum { value: 0.0 });
            });
        });
    });
    run_secs(&mut sim, 60);

    let aggs = &sim.app(root).upper.app.aggregated;
    assert!(!aggs.is_empty(), "aggregation never completed");
    let &(_, _, _, count) = aggs.first().unwrap();
    assert!(count >= (n as u64) - 5, "too few contributions: {count}");
    assert!(
        count < n as u64,
        "dead leaf contribution impossibly arrived"
    );
}

#[test]
fn unsubscribed_leaf_detaches() {
    let n = 20;
    let mut sim = build(n, 9, ForestConfig::default());
    let topic = app_id("leave", "iris", 7);
    subscribe_all(&mut sim, topic, &(0..n).collect::<Vec<_>>());
    run_secs(&mut sim, 20);
    let root = find_root(&sim, topic).unwrap();
    let leaf = (0..n)
        .find(|&i| {
            i != root
                && sim
                    .app(i)
                    .upper
                    .state
                    .membership(topic)
                    .is_some_and(|m| m.children.is_empty())
        })
        .unwrap();
    let parent = sim
        .app(leaf)
        .upper
        .state
        .membership(topic)
        .unwrap()
        .parent
        .unwrap()
        .addr;
    sim.with_app(leaf, |node, ctx| {
        node.with_api(ctx, |forest, dht| {
            forest.with_forest_api(dht, |_app, api| api.unsubscribe(topic));
        });
    });
    run_secs(&mut sim, 25);
    assert!(
        !sim.app(parent)
            .upper
            .state
            .membership(topic)
            .unwrap()
            .children
            .iter()
            .any(|c| c.addr == leaf),
        "parent still lists the departed leaf"
    );
}

#[test]
fn bandit_replan_escapes_sustained_flaky_parent() {
    // A parent that keeps blinking (down 2.4s, up 0.4s) never trips the
    // 3-tick hard failure timeout cleanly — but its KL-UCB link cost grows
    // until children proactively replan away from it (§5, §6).
    let n = 40;
    let fconfig = ForestConfig {
        fanout_cap: 4, // Force a deep tree so interior nodes exist.
        ..ForestConfig::default()
    };
    let mut sim = build(n, 20, fconfig);
    let topic = app_id("flaky", "kara", 8);
    subscribe_all(&mut sim, topic, &(0..n).collect::<Vec<_>>());
    run_secs(&mut sim, 20);
    let root = find_root(&sim, topic).unwrap();
    let flaky = (0..n)
        .find(|&i| {
            i != root
                && sim
                    .app(i)
                    .upper
                    .state
                    .membership(topic)
                    .is_some_and(|m| !m.children.is_empty())
        })
        .expect("an interior node with children exists");
    let victims: Vec<usize> = sim
        .app(flaky)
        .upper
        .state
        .membership(topic)
        .unwrap()
        .children
        .iter()
        .map(|c| c.addr)
        .collect();

    // Blink the flaky node for 100 seconds.
    let mut t = 21_000_000u64;
    while t < 120_000_000 {
        sim.schedule_down(flaky, SimTime::from_micros(t));
        sim.schedule_up(flaky, SimTime::from_micros(t + 2_400_000));
        t += 2_800_000;
    }
    run_secs(&mut sim, 180);

    // The former children escaped: attached, and not to the flaky node.
    for v in &victims {
        let m = sim.app(*v).upper.state.membership(topic);
        if let Some(m) = m {
            assert!(m.attached(), "victim {v} left detached");
            assert_ne!(
                m.parent.map(|p| p.addr),
                Some(flaky),
                "victim {v} still glued to the flaky parent"
            );
        }
    }
    let replans: u64 = (0..n).map(|i| sim.app(i).upper.state.stats.replans).sum();
    let repairs: usize = (0..n)
        .map(|i| sim.app(i).upper.state.repair_events.len())
        .sum();
    assert!(
        replans + repairs as u64 > 0,
        "no adaptation happened at all"
    );
}

#[test]
fn round_state_is_pruned_over_long_trainings() {
    let n = 24;
    let mut sim = build(n, 30, ForestConfig::default());
    let topic = app_id("longrun", "lena", 9);
    subscribe_all(&mut sim, topic, &(0..n).collect::<Vec<_>>());
    run_secs(&mut sim, 20);
    let root = find_root(&sim, topic).unwrap();

    for round in 1..=40u64 {
        sim.with_app(root, |node, ctx| {
            node.with_api(ctx, |forest, dht| {
                forest.with_forest_api(dht, |_app, api| {
                    api.broadcast(topic, round, Sum { value: 0.0 });
                });
            });
        });
        let t = sim.now().as_micros() + 3_000_000;
        sim.run_until(SimTime::from_micros(t));
    }

    // Every node's per-round state is bounded (pruned to a window), not 40.
    for i in 0..n {
        if let Some(m) = sim.app(i).upper.state.membership(topic) {
            assert!(
                m.rounds.len() <= 10,
                "node {i} holds {} rounds of state",
                m.rounds.len()
            );
        }
    }
    // And all recent rounds actually completed at the root.
    let completed = sim.app(root).upper.app.aggregated.len();
    assert!(completed >= 35, "only {completed}/40 rounds completed");
}

#[test]
fn record_events_off_keeps_logs_empty() {
    let n = 16;
    let fconfig = ForestConfig {
        record_events: false,
        ..ForestConfig::default()
    };
    let mut sim = build(n, 31, fconfig);
    let topic = app_id("quiet", "mona", 10);
    subscribe_all(&mut sim, topic, &(0..n).collect::<Vec<_>>());
    run_secs(&mut sim, 20);
    let root = find_root(&sim, topic).unwrap();
    sim.with_app(root, |node, ctx| {
        node.with_api(ctx, |forest, dht| {
            forest.with_forest_api(dht, |_app, api| {
                api.broadcast(topic, 1, Sum { value: 0.0 });
            });
        });
    });
    run_secs(&mut sim, 60);
    // The round ran (app callback fired) but measurement logs stayed empty.
    assert!(!sim.app(root).upper.app.aggregated.is_empty());
    for i in 0..n {
        assert!(sim.app(i).upper.state.broadcast_log.is_empty());
        assert!(sim.app(i).upper.state.agg_log.is_empty());
    }
}

#[test]
fn node_downed_mid_aggregation_contributes_no_partial_sum() {
    // Chaos-harness regression: an interior node churned down in the middle
    // of a round must not leak its half-built partial aggregate into the
    // completed round — its whole subtree's contribution is simply missing.
    // After revival it must reattach and count exactly once in later rounds.
    let n = 40;
    let fconfig = ForestConfig {
        fanout_cap: 4, // Deep tree: interior nodes with real subtrees.
        agg_timeout: SimDuration::from_secs(5),
        ..ForestConfig::default()
    };
    let mut sim = build(n, 23, fconfig);
    let topic = app_id("mid-agg", "nora", 11);
    subscribe_all(&mut sim, topic, &(0..n).collect::<Vec<_>>());
    run_secs(&mut sim, 20);
    let root = find_root(&sim, topic).unwrap();
    let victim = (0..n)
        .find(|&i| {
            i != root
                && sim
                    .app(i)
                    .upper
                    .state
                    .membership(topic)
                    .is_some_and(|m| !m.is_root && m.parent.is_some() && !m.children.is_empty())
        })
        .expect("an interior non-root node exists");
    let subtree = subtree_of(&sim, topic, victim);
    assert!(subtree.len() >= 2, "victim has no subtree");
    let total: f64 = (0..n).map(|i| i as f64 + 1.0).sum();
    let subtree_sum: f64 = subtree.iter().map(|&i| i as f64 + 1.0).sum();

    broadcast_from(&mut sim, root, topic, 1);
    // 30 ms after the broadcast every subscriber is still inside its 50 ms
    // training window: the victim's round is open and nothing has flushed.
    sim.schedule_down(victim, SimTime::from_micros(20_030_000));
    sim.schedule_up(victim, SimTime::from_micros(40_000_000));
    run_secs(&mut sim, 35);

    let aggs = sim.app(root).upper.app.aggregated.clone();
    let &(t, r, value, count) = aggs.first().expect("round 1 never completed");
    assert_eq!((t, r), (topic, 1));
    assert!(
        (count as usize) <= n - subtree.len(),
        "count {count} includes the dead subtree ({} nodes)",
        subtree.len()
    );
    assert!(
        value <= total - subtree_sum + 1e-9,
        "partial aggregate leaked: got {value}, ceiling {}",
        total - subtree_sum
    );

    // The revived node re-arms its maintenance, notices the stale parent,
    // and reattaches bidirectionally to a live parent.
    run_secs(&mut sim, 60);
    let m = sim
        .app(victim)
        .upper
        .state
        .membership(topic)
        .expect("membership survives churn");
    assert!(m.attached(), "revived node never reattached");
    let parent = m.parent.expect("attached non-root has a parent").addr;
    assert!(sim.alive(parent), "reattached to a dead parent");
    assert!(
        sim.app(parent)
            .upper
            .state
            .membership(topic)
            .is_some_and(|pm| pm.children.iter().any(|c| c.addr == victim)),
        "parent {parent} does not list the revived node"
    );

    // A post-revival round is conserved: nobody counts twice.
    broadcast_from(&mut sim, root, topic, 2);
    run_secs(&mut sim, 80);
    assert!(
        sim.app(victim).upper.app.models_seen.contains(&(topic, 2)),
        "revived node missed the post-revival broadcast"
    );
    let aggs = &sim.app(root).upper.app.aggregated;
    let &(_, _, value2, count2) = aggs
        .iter()
        .find(|&&(t, r, _, _)| (t, r) == (topic, 2))
        .expect("round 2 never completed");
    assert!(count2 as usize <= n, "round 2 counted {count2} > {n} nodes");
    assert!(
        value2 <= total + 1e-9,
        "round 2 over-aggregated: {value2} > {total}"
    );
}

#[test]
fn node_downed_mid_join_retries_after_revival() {
    // Chaos-harness regression (the exact failure `totoro-chaos --plan
    // churn+stragglers` first surfaced): timers that fire while a node is
    // down are swallowed, so a node churned out while still JOINING
    // revives with `joining = true`, no parent — and, before
    // `UpperLayer::on_up` re-armed the tick chain, no timer left to drive
    // join retries. No DHT failure notification can rescue a node that
    // has no parent to declare dead; it stayed detached forever.
    let n = 60;
    let fconfig = ForestConfig {
        fanout_cap: 4,
        ..ForestConfig::default()
    };
    let mut sim = build(n, 24, fconfig);
    let topic = app_id("zombie", "omar", 12);
    subscribe_all(&mut sim, topic, &(0..n).collect::<Vec<_>>());
    run_secs(&mut sim, 20);
    let root = find_root(&sim, topic).unwrap();
    let (leaf, parent) = (0..n)
        .find_map(|i| {
            let m = sim.app(i).upper.state.membership(topic)?;
            if i == root || !m.children.is_empty() {
                return None;
            }
            let p = m.parent?.addr;
            (p != root).then_some((i, p))
        })
        .expect("a leaf with a non-root parent exists");

    // Kill the parent, and hold the orphan in its joining state by eating
    // every message it sends (its repair JOINs included) until churn takes
    // it down too.
    sim.schedule_down(parent, SimTime::from_micros(21_000_000));
    sim.set_fault_filter(Box::new(move |now, src, _dst, _msg| {
        src == leaf
            && now >= SimTime::from_micros(22_000_000)
            && now < SimTime::from_micros(27_000_000)
    }));
    sim.schedule_down(leaf, SimTime::from_micros(27_000_000));
    sim.schedule_up(leaf, SimTime::from_micros(34_000_000));

    // Sanity: the leaf really was mid-join when it went down.
    sim.run_until(SimTime::from_micros(26_900_000));
    let m = sim.app(leaf).upper.state.membership(topic).unwrap();
    assert!(
        m.joining && m.parent.is_none(),
        "setup failed: leaf was not held in the joining state"
    );

    run_secs(&mut sim, 80);
    let m = sim
        .app(leaf)
        .upper
        .state
        .membership(topic)
        .expect("membership survives churn");
    assert!(m.attached(), "revived leaf is a maintenance zombie");
    let new_parent = m.parent.expect("attached non-root has a parent").addr;
    assert_ne!(new_parent, parent, "reattached to the dead parent");
    assert!(sim.alive(new_parent));
    assert!(
        sim.app(new_parent)
            .upper
            .state
            .membership(topic)
            .is_some_and(|pm| pm.children.iter().any(|c| c.addr == leaf)),
        "new parent does not list the revived leaf"
    );
    assert!(
        sim.app(leaf).upper.state.stats.joins_sent >= 3,
        "the leaf never retried its join after revival"
    );
}
