//! Messages of the publish/subscribe forest protocol.

use totoro_dht::{Contact, Id};
use totoro_simnet::{NodeIdx, Payload, Shared};

/// Data that can ride a dataflow tree.
///
/// Gradient aggregation is performed *in-network*: every interior node
/// combines the updates of its subtree before forwarding one message upward
/// (§4.3 step 2b). `combine` must therefore be associative and commutative
/// — e.g. a weighted sum of gradients plus a sample count.
pub trait TreeData: Payload {
    /// Folds `other` into `self`.
    fn combine(&mut self, other: &Self);
}

/// Forest protocol messages; `D` is the application data (models/updates).
#[derive(Clone, Debug)]
pub enum TreeMsg<D> {
    /// Subscription request, routed through the DHT toward the topic key.
    /// Intercepted hop-by-hop: each node on the path adopts the previous
    /// hop as a child and, if new to the tree, re-writes `child` to itself
    /// and keeps routing — the JOIN-path-union construction of §4.3.
    Join {
        /// Tree topic (redundant with the routing key for routed joins,
        /// but required for direct push-down delegation).
        topic: Id,
        /// The node requesting attachment at this point of the path.
        child: Contact,
    },
    /// Parent → child: attachment confirmed.
    JoinAck {
        /// Tree topic.
        topic: Id,
        /// The adopting parent.
        parent: Contact,
        /// Parent's depth in the tree (root = 0); child depth is +1.
        depth: u16,
    },
    /// Child → parent: detach (voluntary unsubscribe).
    Leave {
        /// Tree topic.
        topic: Id,
        /// The departing child's address.
        child: NodeIdx,
    },
    /// Parent → child: model dissemination down the tree.
    ///
    /// The payload is [`Shared`]: the same model goes verbatim to every
    /// child at every hop, so the fan-out clones reference-count bumps
    /// instead of copying tensors. `Shared` reports the inner payload's
    /// `size_bytes`, so wire accounting is unchanged.
    Broadcast {
        /// Tree topic.
        topic: Id,
        /// Training round number.
        round: u64,
        /// Depth of the *sender*; receiver depth is +1.
        depth: u16,
        /// The disseminated data (e.g. serialized model weights).
        data: Shared<D>,
    },
    /// Child → parent (or self → self for a local contribution): partially
    /// aggregated updates climbing toward the root.
    AggregateUp {
        /// Tree topic.
        topic: Id,
        /// Training round number.
        round: u64,
        /// Number of leaf contributions folded into `data`.
        count: u64,
        /// The (partially aggregated) update.
        data: D,
    },
    /// Child → parent: this subtree contributes nothing to the round
    /// (e.g. the client-selection policy skipped every worker in it), so
    /// the parent must not wait for it.
    Abstain {
        /// Tree topic.
        topic: Id,
        /// Training round number.
        round: u64,
    },
    /// Parent → children keep-alive (§4.5); carries depth so children keep
    /// their depth fresh as the tree reshapes.
    ParentHeartbeat {
        /// Tree topic.
        topic: Id,
        /// Sender's depth.
        depth: u16,
        /// The sending parent (lets a detached child re-adopt it).
        sender: Contact,
    },
}

const TREE_HEADER: usize = 24;
const CONTACT_WIRE: usize = 24;

impl<D: Payload> Payload for TreeMsg<D> {
    fn size_bytes(&self) -> usize {
        match self {
            TreeMsg::Join { .. } => TREE_HEADER + 16 + CONTACT_WIRE,
            TreeMsg::JoinAck { .. } => TREE_HEADER + CONTACT_WIRE + 2,
            TreeMsg::Leave { .. } => TREE_HEADER + 8,
            TreeMsg::Broadcast { data, .. } => TREE_HEADER + 10 + data.size_bytes(),
            TreeMsg::AggregateUp { data, .. } => TREE_HEADER + 16 + data.size_bytes(),
            TreeMsg::Abstain { .. } => TREE_HEADER + 16,
            TreeMsg::ParentHeartbeat { .. } => TREE_HEADER + 2 + CONTACT_WIRE,
        }
    }

    // Tree control traffic is forest-layer; data-bearing rounds tag as the
    // carried data's layer when it declares one (FL rounds show as "fl").
    fn layer(&self) -> &'static str {
        match self {
            TreeMsg::Broadcast { data, .. } => {
                let l = data.layer();
                if l.is_empty() {
                    "forest"
                } else {
                    l
                }
            }
            TreeMsg::AggregateUp { data, .. } => {
                let l = data.layer();
                if l.is_empty() {
                    "forest"
                } else {
                    l
                }
            }
            _ => "forest",
        }
    }

    fn kind(&self) -> &'static str {
        match self {
            TreeMsg::Join { .. } => "join",
            TreeMsg::JoinAck { .. } => "join_ack",
            TreeMsg::Leave { .. } => "leave",
            TreeMsg::Broadcast { .. } => "broadcast",
            TreeMsg::AggregateUp { .. } => "aggregate_up",
            TreeMsg::Abstain { .. } => "abstain",
            TreeMsg::ParentHeartbeat { .. } => "parent_heartbeat",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Clone, Debug)]
    struct Vecs(Vec<f32>);

    impl Payload for Vecs {
        fn size_bytes(&self) -> usize {
            self.0.len() * 4
        }
    }

    impl TreeData for Vecs {
        fn combine(&mut self, other: &Self) {
            for (a, b) in self.0.iter_mut().zip(&other.0) {
                *a += b;
            }
        }
    }

    #[test]
    fn sizes_reflect_payload() {
        let small = TreeMsg::Broadcast {
            topic: Id::ZERO,
            round: 0,
            depth: 0,
            data: Shared::new(Vecs(vec![0.0; 10])),
        };
        let big = TreeMsg::Broadcast {
            topic: Id::ZERO,
            round: 0,
            depth: 0,
            data: Shared::new(Vecs(vec![0.0; 1000])),
        };
        assert!(big.size_bytes() > small.size_bytes() + 3_000);
        let hb: TreeMsg<Vecs> = TreeMsg::ParentHeartbeat {
            topic: Id::ZERO,
            depth: 1,
            sender: Contact {
                id: Id::ZERO,
                addr: 0,
            },
        };
        assert!(hb.size_bytes() < 64);
    }

    #[test]
    fn combine_is_elementwise() {
        let mut a = Vecs(vec![1.0, 2.0]);
        a.combine(&Vecs(vec![10.0, 20.0]));
        assert_eq!(a.0, vec![11.0, 22.0]);
    }
}
