//! Per-topic tree membership and per-round aggregation state.

use std::collections::HashMap; // det: allow(unordered: import only; every declaration and construction site below carries its own proof)

use totoro_bandit::LinkStats;
use totoro_dht::{Contact, Id};
use totoro_simnet::{NodeIdx, SimTime};

/// Aggregation state of one round at one node.
#[derive(Clone, Debug)]
pub struct RoundAgg<D> {
    /// Running combination of received contributions.
    pub acc: Option<D>,
    /// Leaf contributions folded into `acc`.
    pub count: u64,
    /// Direct inputs received (children + possibly self).
    pub inputs: usize,
    /// Direct inputs expected before flushing without a timeout.
    pub expected: usize,
    /// Whether the partial result was already pushed up / delivered.
    pub flushed: bool,
    /// Whether a straggler-cutoff timer was armed for this round.
    pub timer_armed: bool,
}

impl<D> Default for RoundAgg<D> {
    fn default() -> Self {
        RoundAgg {
            acc: None,
            count: 0,
            inputs: 0,
            expected: 0,
            flushed: false,
            timer_armed: false,
        }
    }
}

/// One tree-repair episode observed at a node (Figure 12's unit of
/// measurement): when the parent loss was detected, and when the node was
/// re-attached.
#[derive(Clone, Copy, Debug)]
pub struct RepairEvent {
    /// Tree topic.
    pub topic: Id,
    /// When the broken parent was detected.
    pub detected: SimTime,
    /// When a new JoinAck re-attached this node (None while in progress).
    pub reattached: Option<SimTime>,
}

/// A node's membership in one topic's dataflow tree.
#[derive(Clone, Debug)]
pub struct Membership<D> {
    /// Tree topic (= AppId).
    pub topic: Id,
    /// Current parent, `None` at the root or while detached.
    pub parent: Option<Contact>,
    /// Children table: one entry per adopted child (§4.3 step 1c).
    pub children: Vec<Contact>,
    /// Whether this node subscribed (participates as a worker) as opposed
    /// to being a pure forwarder recruited by join-path interception.
    pub subscriber: bool,
    /// Whether this node is the rendezvous root (the application master).
    pub is_root: bool,
    /// Depth in the tree (root = 0, unknown = `u16::MAX`).
    pub depth: u16,
    /// Last time the parent gave a sign of life.
    pub last_parent_seen: SimTime,
    /// Whether a JOIN is in flight.
    pub joining: bool,
    /// When the in-flight JOIN was sent (for retry).
    pub join_sent: SimTime,
    /// Per-round aggregation state.
    // det: allow(unordered: keyed entry/get by the round number carried in each message; `prune_rounds`' retain predicate is key-only and side-effect-free, `memory_bytes` takes len — hash order never escapes)
    pub rounds: HashMap<u64, RoundAgg<D>>,
    /// Round of the most recent broadcast seen.
    pub last_broadcast_round: Option<u64>,
    /// Bandit statistics of the link to the current parent: one attempt
    /// per maintenance tick, success when the parent was heard from within
    /// that tick (§5's semi-bandit feedback applied to tree links).
    pub parent_link: LinkStats,
}

impl<D> Membership<D> {
    /// Fresh, detached membership.
    pub fn new(topic: Id, now: SimTime) -> Self {
        Membership {
            topic,
            parent: None,
            children: Vec::new(),
            subscriber: false,
            is_root: false,
            depth: u16::MAX,
            last_parent_seen: now,
            joining: false,
            join_sent: now,
            rounds: HashMap::new(), // det: allow(unordered: construction of the key-only map proven at its field declaration)
            last_broadcast_round: None,
            parent_link: LinkStats::default(),
        }
    }

    /// Whether this node is attached to the tree in any role.
    pub fn attached(&self) -> bool {
        self.is_root || self.parent.is_some()
    }

    /// Adds a child if absent. Returns `true` if the table changed.
    pub fn add_child(&mut self, c: Contact) -> bool {
        if self.children.iter().any(|x| x.addr == c.addr) {
            false
        } else {
            self.children.push(c);
            true
        }
    }

    /// Removes a child by address. Returns `true` if present.
    pub fn remove_child(&mut self, addr: NodeIdx) -> bool {
        let before = self.children.len();
        self.children.retain(|c| c.addr != addr);
        before != self.children.len()
    }

    /// Drops aggregation state older than `keep_from` (bounds memory over
    /// long trainings).
    pub fn prune_rounds(&mut self, keep_from: u64) {
        self.rounds.retain(|&r, _| r >= keep_from);
    }

    /// Approximate memory footprint (Figure 13b).
    pub fn memory_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.children.len() * std::mem::size_of::<Contact>()
            + self.rounds.len() * std::mem::size_of::<(u64, RoundAgg<D>)>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(addr: NodeIdx) -> Contact {
        Contact {
            id: Id::new(addr as u128),
            addr,
        }
    }

    #[test]
    fn children_table_dedupes() {
        let mut m: Membership<u32> = Membership::new(Id::ZERO, SimTime::ZERO);
        assert!(m.add_child(c(1)));
        assert!(!m.add_child(c(1)));
        assert!(m.add_child(c(2)));
        assert_eq!(m.children.len(), 2);
        assert!(m.remove_child(1));
        assert!(!m.remove_child(1));
    }

    #[test]
    fn attachment_states() {
        let mut m: Membership<u32> = Membership::new(Id::ZERO, SimTime::ZERO);
        assert!(!m.attached());
        m.is_root = true;
        assert!(m.attached());
        m.is_root = false;
        m.parent = Some(c(3));
        assert!(m.attached());
    }

    #[test]
    fn round_pruning() {
        let mut m: Membership<u32> = Membership::new(Id::ZERO, SimTime::ZERO);
        for r in 0..10 {
            m.rounds.insert(r, RoundAgg::default());
        }
        m.prune_rounds(7);
        let mut rounds: Vec<u64> = m.rounds.keys().copied().collect();
        rounds.sort_unstable();
        assert_eq!(rounds, vec![7, 8, 9]);
    }
}
