//! # totoro-pubsub
//!
//! Totoro's Layer 2: the publish/subscribe-based *forest* abstraction
//! (§4.3 of the paper). Every FL application is assigned an independent,
//! dynamically-structured dataflow tree built as the union of DHT JOIN
//! paths toward the application's AppId. The rendezvous node becomes the
//! application's master; interior nodes aggregate in-network; leaves are
//! the workers. Together the trees form a forest that spreads masters
//! uniformly over the overlay.
//!
//! * [`msg`] — tree protocol messages and the [`msg::TreeData`] combining
//!   contract for in-network aggregation.
//! * [`membership`] — per-topic membership and per-round aggregation state.
//! * [`forest`] — the protocol: subscribe/join-interception, broadcast,
//!   aggregation with straggler cutoffs, keep-alive repair (§4.5).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod forest;
pub mod membership;
pub mod msg;

pub use forest::{
    AggEvent, BroadcastEvent, Forest, ForestApi, ForestApp, ForestConfig, ForestState, ForestStats,
};
pub use membership::{Membership, RepairEvent, RoundAgg};
pub use msg::{TreeData, TreeMsg};

/// A complete pub/sub node: a DHT node whose upper layer is a forest
/// hosting application `F`.
pub type ForestNode<F> = totoro_dht::DhtNode<Forest<F>>;
