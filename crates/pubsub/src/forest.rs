//! The publish/subscribe forest: Scribe-style per-application dataflow
//! trees over the DHT (§4.3).
//!
//! Each FL application owns a *topic* (its AppId). Subscribing routes a
//! JOIN toward the topic key; the union of all JOIN paths forms the
//! application's dataflow tree, rooted at the rendezvous node (the node
//! whose id is numerically closest to the AppId) — which is thereby
//! promoted to that application's *master*. Interior nodes act as
//! forwarders/aggregators, leaves as workers. Model broadcast travels down
//! the tree; gradient aggregation climbs it with in-network combining.

use std::collections::{BTreeMap, HashMap}; // det: allow(unordered: import only; every declaration and construction site below carries its own proof)

use totoro_dht::{Contact, DhtApi, Id, UpperLayer};
use totoro_simnet::{ComputeKind, NodeIdx, Shared, SimDuration, SimTime};

use crate::membership::{Membership, RepairEvent};
use crate::msg::{TreeData, TreeMsg};

/// Forest protocol parameters.
#[derive(Clone, Copy, Debug)]
pub struct ForestConfig {
    /// Maximum children per node; joins beyond the cap are pushed down to
    /// an existing child. `0` = uncapped (fanout then bounded naturally by
    /// the routing base `2^b`).
    pub fanout_cap: usize,
    /// Forest maintenance tick (parent heartbeats, repair checks).
    pub tick: SimDuration,
    /// A parent silent for this many ticks triggers tree repair (§4.5).
    pub parent_timeout_ticks: u32,
    /// An unanswered JOIN is retried after this many ticks.
    pub join_retry_ticks: u32,
    /// Straggler cutoff: an interior node flushes a partial aggregate this
    /// long after the round's broadcast even if children are missing.
    pub agg_timeout: SimDuration,
    /// Whether to log broadcast/aggregation events (costs memory; enable
    /// for measurement runs).
    pub record_events: bool,
    /// Whether JOINs and tree traffic are restricted to the origin zone
    /// (administrative isolation, §4.2).
    pub zone_restricted: bool,
    /// Bandit-based path replanning (§5, §6): when the KL-UCB-optimistic
    /// estimate of the parent link's per-tick delivery cost exceeds this
    /// threshold (in ticks), proactively re-JOIN through an alternative
    /// route even though the parent is not yet declared dead. `None`
    /// disables replanning (repair then relies on hard timeouts alone).
    pub replan_cost_threshold: Option<f64>,
    /// Depth ceiling used to detect parent cycles. A repair JOIN can be
    /// intercepted and adopted by a node inside the joiner's own subtree,
    /// closing a heartbeat-sustained loop that is invisible locally — but
    /// every member of such a loop sees its depth grow by one per tick as
    /// `parent depth + 1` chases itself around the cycle. A node whose
    /// depth reaches this bound (while still below the `u16::MAX`
    /// "unknown" sentinel) therefore concludes it is trapped, leaves its
    /// parent, and re-joins through the rendezvous. `0` disables the
    /// check. Legitimate trees stay orders of magnitude shallower, so the
    /// default never fires outside an actual cycle.
    pub max_depth: u16,
}

impl Default for ForestConfig {
    fn default() -> Self {
        ForestConfig {
            fanout_cap: 0,
            tick: SimDuration::from_secs(1),
            parent_timeout_ticks: 3,
            join_retry_ticks: 2,
            agg_timeout: SimDuration::from_secs(60),
            record_events: true,
            zone_restricted: false,
            replan_cost_threshold: Some(2.0),
            max_depth: 64,
        }
    }
}

/// A recorded model-dissemination receipt (for Figure 6a measurements).
#[derive(Clone, Copy, Debug)]
pub struct BroadcastEvent {
    /// Tree topic.
    pub topic: Id,
    /// Round number.
    pub round: u64,
    /// When the broadcast arrived at this node.
    pub at: SimTime,
    /// This node's depth at receipt time.
    pub depth: u16,
}

/// A recorded root-side aggregation completion (Figure 6b).
#[derive(Clone, Copy, Debug)]
pub struct AggEvent {
    /// Tree topic.
    pub topic: Id,
    /// Round number.
    pub round: u64,
    /// When the root finished combining this round.
    pub at: SimTime,
    /// Leaf contributions aggregated.
    pub count: u64,
}

/// Forest protocol counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct ForestStats {
    /// JOIN messages originated (including retries and repairs).
    pub joins_sent: u64,
    /// Children adopted.
    pub children_adopted: u64,
    /// JOINs pushed down due to the fanout cap.
    pub pushdowns: u64,
    /// Broadcast messages forwarded to children.
    pub broadcasts_forwarded: u64,
    /// Aggregates sent to a parent.
    pub aggregates_sent: u64,
    /// Contributions arriving after the round was flushed.
    pub late_contributions: u64,
    /// Rounds flushed by the straggler timeout rather than completion.
    pub timeout_flushes: u64,
    /// Proactive bandit-driven path replans (flaky parent avoided before a
    /// hard failure was declared).
    pub replans: u64,
    /// Parent cycles broken by the depth-ceiling detector (a node saw its
    /// depth inflate past [`ForestConfig::max_depth`] and re-joined).
    pub cycle_breaks: u64,
}

/// Mutable forest-wide state of one node.
#[derive(Debug)]
pub struct ForestState<D> {
    // BTreeMap, not HashMap: per-tick maintenance iterates topics, and the
    // resulting message order must not depend on the process's hash seed
    // (bit-identical reruns are part of the bench contract).
    trees: BTreeMap<Id, Membership<D>>,
    // det: allow(unordered: token-keyed insert/remove only — timer fire looks up one token, `memory_bytes` takes len; never iterated, so hash order cannot reach message order or report output)
    round_timers: HashMap<u64, (Id, u64)>,
    next_round_token: u64,
    pending_flush: Vec<(Id, u64)>,
    /// Broadcast receipts (when `record_events`).
    pub broadcast_log: Vec<BroadcastEvent>,
    /// Root aggregation completions (when `record_events`).
    pub agg_log: Vec<AggEvent>,
    /// Tree-repair episodes (Figure 12).
    pub repair_events: Vec<RepairEvent>,
    /// Counters.
    pub stats: ForestStats,
}

impl<D> ForestState<D> {
    fn new() -> Self {
        ForestState {
            trees: BTreeMap::new(),
            round_timers: HashMap::new(), // det: allow(unordered: construction of the key-only map proven at its field declaration)
            next_round_token: 1,
            pending_flush: Vec::new(),
            broadcast_log: Vec::new(),
            agg_log: Vec::new(),
            repair_events: Vec::new(),
            stats: ForestStats::default(),
        }
    }

    /// Membership in `topic`'s tree, if any.
    pub fn membership(&self, topic: Id) -> Option<&Membership<D>> {
        self.trees.get(&topic)
    }

    /// Iterates over all tree memberships.
    pub fn memberships(&self) -> impl Iterator<Item = &Membership<D>> {
        self.trees.values()
    }

    fn tree_mut(&mut self, topic: Id, now: SimTime) -> &mut Membership<D> {
        self.trees
            .entry(topic)
            .or_insert_with(|| Membership::new(topic, now))
    }

    /// Approximate memory footprint (Figure 13b).
    pub fn memory_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self
                .trees
                .values()
                .map(Membership::memory_bytes)
                .sum::<usize>()
            + self.round_timers.len() * 24
    }
}

/// This node's contact card, derived from the live DHT state.
fn me_contact<D: TreeData>(dht: &DhtApi<'_, '_, TreeMsg<D>>) -> Contact {
    Contact {
        id: dht.id(),
        addr: dht.addr(),
    }
}

/// The interface the forest exposes to the application layer (the FL
/// engine) during callbacks.
pub struct ForestApi<'a, 'b, 'c, D: TreeData> {
    /// Forest state (trees, logs, counters).
    pub forest: &'a mut ForestState<D>,
    /// The underlying DHT API.
    pub dht: &'a mut DhtApi<'b, 'c, TreeMsg<D>>,
    config: &'a ForestConfig,
}

impl<D: TreeData> ForestApi<'_, '_, '_, D> {
    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.dht.now()
    }

    /// This node's address.
    pub fn addr(&self) -> NodeIdx {
        self.dht.addr()
    }

    /// This node's ring id.
    pub fn id(&self) -> Id {
        self.dht.id()
    }

    /// The shared network topology (read-only).
    pub fn topology(&self) -> &totoro_simnet::Topology {
        self.dht.topology()
    }

    /// The node's deterministic random stream.
    pub fn rng(&mut self) -> &mut rand::rngs::StdRng {
        self.dht.rng()
    }

    /// Arms an application timer (`token` surfaces in
    /// [`ForestApp::on_timer`]).
    pub fn set_app_timer(&mut self, delay: SimDuration, token: u64) {
        self.dht.set_timer(delay, token * 2 + 1);
    }

    /// Charges simulated compute time.
    pub fn charge_compute(&mut self, kind: ComputeKind, amount: SimDuration) {
        self.dht.charge_compute(kind, amount);
    }

    /// Subscribes this node to `topic`'s tree (§4.3 `Subscribe(app_id)`):
    /// routes a JOIN toward the topic key unless already attached.
    pub fn subscribe(&mut self, topic: Id) {
        let now = self.now();
        let me = me_contact(self.dht);
        let m = self.forest.tree_mut(topic, now);
        m.subscriber = true;
        if m.attached() || m.joining {
            return;
        }
        m.joining = true;
        m.join_sent = now;
        self.forest.stats.joins_sent += 1;
        self.dht.route(
            topic,
            TreeMsg::Join { topic, child: me },
            self.config.zone_restricted,
        );
    }

    /// Creates `topic`'s tree explicitly (§4.3 `CreateTree(app_id)`): the
    /// creator subscribes, which routes the first JOIN and promotes the
    /// rendezvous node to the application's master.
    pub fn create_tree(&mut self, topic: Id) {
        self.subscribe(topic);
    }

    /// Unsubscribes from `topic`: informs the parent and detaches (children
    /// are kept; the node remains a forwarder while children exist).
    pub fn unsubscribe(&mut self, topic: Id) {
        let me_addr = self.dht.addr();
        let now = self.now();
        let m = self.forest.tree_mut(topic, now);
        m.subscriber = false;
        if m.children.is_empty() && !m.is_root {
            if let Some(p) = m.parent.take() {
                self.dht.send_direct(
                    p.addr,
                    TreeMsg::Leave {
                        topic,
                        child: me_addr,
                    },
                );
            }
        }
    }

    /// Disseminates `data` to the whole tree (§4.3 `Broadcast`); call at
    /// the application master (root). The round number sequences the
    /// matching aggregation wave.
    pub fn broadcast(&mut self, topic: Id, round: u64, data: D) {
        self.broadcast_expecting_local(topic, round, data, false);
    }

    /// Like [`ForestApi::broadcast`], but when `expect_local` is set the
    /// round additionally waits for one local contribution from this node
    /// (a master that also acts as a worker, submitting its own update via
    /// [`ForestApi::contribute`]).
    pub fn broadcast_expecting_local(
        &mut self,
        topic: Id,
        round: u64,
        data: D,
        expect_local: bool,
    ) {
        let now = self.now();
        let record = self.config.record_events;
        let agg_timeout = self.config.agg_timeout;
        // Wrap once; every child gets a reference-count bump of the same
        // payload. `self.forest` and `self.dht` are disjoint fields, so the
        // membership borrow can span the sends without cloning `children`.
        let data = Shared::new(data);
        let m = self.forest.tree_mut(topic, now);
        m.last_broadcast_round = Some(round);
        m.prune_rounds(round.saturating_sub(8));
        let depth = if m.is_root { 0 } else { m.depth };
        let n_children = m.children.len();
        let ra = m.rounds.entry(round).or_default();
        ra.expected = n_children + usize::from(expect_local);
        if record {
            self.forest.broadcast_log.push(BroadcastEvent {
                topic,
                round,
                at: now,
                depth,
            });
        }
        let m = self.forest.membership(topic).expect("tree exists");
        for c in &m.children {
            self.dht.send_direct(
                c.addr,
                TreeMsg::Broadcast {
                    topic,
                    round,
                    depth,
                    data: data.clone(),
                },
            );
        }
        self.forest.stats.broadcasts_forwarded += n_children as u64;
        self.arm_round_timer(topic, round, agg_timeout);
    }

    /// Contributes a local update into `topic`'s round `round`, after a
    /// simulated local compute time of `delay` (e.g. training). The
    /// contribution loops through the local network stack so the delay is
    /// honored by the event clock.
    pub fn contribute(&mut self, topic: Id, round: u64, data: D, delay: SimDuration) {
        let me = self.dht.addr();
        self.dht.send_direct_after(
            me,
            TreeMsg::AggregateUp {
                topic,
                round,
                count: 1,
                data,
            },
            delay,
        );
    }

    /// Requests an early flush of `topic`'s round `round` at this node —
    /// the semi-synchronous mode's quorum cutoff: the application decides
    /// (e.g. in `on_partial`) that enough contributions arrived and the
    /// round should complete now rather than waiting for the stragglers.
    /// Processed after the current callback returns.
    pub fn request_flush(&mut self, topic: Id, round: u64) {
        self.forest.pending_flush.push((topic, round));
    }

    /// Number of children in `topic`'s tree.
    pub fn children_count(&self, topic: Id) -> usize {
        self.forest
            .membership(topic)
            .map_or(0, |m| m.children.len())
    }

    /// Whether this node is `topic`'s root (application master).
    pub fn is_root(&self, topic: Id) -> bool {
        self.forest.membership(topic).is_some_and(|m| m.is_root)
    }

    fn arm_round_timer(&mut self, topic: Id, round: u64, delay: SimDuration) {
        let token = self.forest.next_round_token;
        self.forest.next_round_token += 1;
        self.forest.round_timers.insert(token, (topic, round));
        self.dht.set_timer(delay, token * 2);
    }
}

/// Application behaviour layered on the forest (the FL engine implements
/// this; it corresponds to the callbacks of Table 2).
pub trait ForestApp: Sized {
    /// The tree-borne data type (e.g. serialized model updates).
    type Data: TreeData;

    /// Invoked once at node start.
    fn on_start(&mut self, api: &mut ForestApi<'_, '_, '_, Self::Data>) {
        let _ = api;
    }

    /// `onBroadcast`: a model reached this subscriber. Return
    /// `Some((update, compute_time))` to contribute to the round's
    /// aggregation after `compute_time` of local training, or `None` to sit
    /// the round out.
    fn on_model(
        &mut self,
        api: &mut ForestApi<'_, '_, '_, Self::Data>,
        topic: Id,
        round: u64,
        data: &Self::Data,
    ) -> Option<(Self::Data, SimDuration)>;

    /// `onAggregate` at the master: the round's aggregation completed (or
    /// timed out) at the root with `count` leaf contributions.
    fn on_aggregated(
        &mut self,
        api: &mut ForestApi<'_, '_, '_, Self::Data>,
        topic: Id,
        round: u64,
        data: Self::Data,
        count: u64,
    );

    /// `onAggregate` at interior nodes: a partial aggregate grew to `count`
    /// contributions.
    fn on_partial(
        &mut self,
        api: &mut ForestApi<'_, '_, '_, Self::Data>,
        topic: Id,
        round: u64,
        count: u64,
    ) {
        let _ = (api, topic, round, count);
    }

    /// This node just became `topic`'s root — i.e. it was promoted to the
    /// application's master (initial rendezvous or takeover after churn).
    fn on_became_root(&mut self, api: &mut ForestApi<'_, '_, '_, Self::Data>, topic: Id) {
        let _ = (api, topic);
    }

    /// `onTimer`: an application timer armed via
    /// [`ForestApi::set_app_timer`] fired.
    fn on_timer(&mut self, api: &mut ForestApi<'_, '_, '_, Self::Data>, token: u64) {
        let _ = (api, token);
    }

    /// Approximate application state size (Figure 13b).
    fn memory_bytes(&self) -> usize {
        0
    }
}

/// The forest layer: implements the DHT's [`UpperLayer`], hosts an
/// application implementing [`ForestApp`].
pub struct Forest<F: ForestApp> {
    /// Forest protocol state.
    pub state: ForestState<F::Data>,
    /// The hosted application (e.g. the FL engine).
    pub app: F,
    config: ForestConfig,
    started: bool,
    /// When the maintenance tick last ran; lets `on_up` tell a still-armed
    /// tick chain (short outage) from one whose timer was swallowed while
    /// the node was down and must be re-armed.
    last_tick: SimTime,
}

impl<F: ForestApp> Forest<F> {
    /// Wraps `app` with a forest using `config`.
    pub fn new(app: F, config: ForestConfig) -> Self {
        Forest {
            state: ForestState::new(),
            app,
            config,
            started: false,
            last_tick: SimTime::ZERO,
        }
    }

    /// The forest configuration.
    pub fn config(&self) -> &ForestConfig {
        &self.config
    }

    fn api<'a, 'b, 'c>(
        state: &'a mut ForestState<F::Data>,
        config: &'a ForestConfig,
        dht: &'a mut DhtApi<'b, 'c, TreeMsg<F::Data>>,
    ) -> ForestApi<'a, 'b, 'c, F::Data> {
        ForestApi {
            forest: state,
            dht,
            config,
        }
    }

    /// Runs an application-level operation with full API access (the entry
    /// point experiment drivers use via `DhtNode::with_api`).
    pub fn with_forest_api<R>(
        &mut self,
        dht: &mut DhtApi<'_, '_, TreeMsg<F::Data>>,
        f: impl FnOnce(&mut F, &mut ForestApi<'_, '_, '_, F::Data>) -> R,
    ) -> R {
        let mut api = Self::api(&mut self.state, &self.config, dht);
        f(&mut self.app, &mut api)
    }

    /// Adopts `child` into `topic`'s tree, honoring the fanout cap by
    /// pushing excess joins down to an existing child.
    /// Returns `false` when the joiner was refused (adopting it would close
    /// an immediate parent cycle); callers on the routing path then keep
    /// forwarding the JOIN toward the rendezvous instead of ending it here.
    fn adopt_child(
        &mut self,
        dht: &mut DhtApi<'_, '_, TreeMsg<F::Data>>,
        topic: Id,
        child: Contact,
    ) -> bool {
        if child.addr == dht.addr() {
            return true;
        }
        let now = dht.now();
        let cap = self.config.fanout_cap;
        let me = me_contact(dht);
        let m = self.state.tree_mut(topic, now);
        // With the `mc-bugs` validation feature the guard is compiled out,
        // reintroducing the pre-fix parent-cycle bug for the model checker
        // to rediscover (seeded bug FOREST-CYCLE).
        #[cfg(not(feature = "mc-bugs"))]
        if m.parent.map(|p| p.addr) == Some(child.addr) {
            // Never adopt our own parent: that would turn the tree edge
            // into a two-node loop the instant the JoinAck lands. The
            // joiner's JOIN keeps routing toward the rendezvous instead.
            return false;
        }
        if m.children.iter().any(|c| c.addr == child.addr) {
            // Re-ack an existing child (join retry).
            let depth = if m.is_root { 0 } else { m.depth };
            dht.send_direct(
                child.addr,
                TreeMsg::JoinAck {
                    topic,
                    parent: me,
                    depth,
                },
            );
            return true;
        }
        if cap > 0 && m.children.len() >= cap {
            // Push-down: delegate to the child whose id is closest to the
            // newcomer (deterministic and locality-friendly).
            let target = m
                .children
                .iter()
                .min_by_key(|c| c.id.ring_distance(child.id))
                .copied()
                .expect("cap > 0 implies children exist");
            self.state.stats.pushdowns += 1;
            dht.send_direct(target.addr, TreeMsg::Join { topic, child });
            return true;
        }
        m.add_child(child);
        let depth = if m.is_root { 0 } else { m.depth };
        self.state.stats.children_adopted += 1;
        dht.send_direct(
            child.addr,
            TreeMsg::JoinAck {
                topic,
                parent: me,
                depth,
            },
        );
        true
    }

    /// Starts (or retries) this node's own attachment to `topic`.
    fn send_own_join(&mut self, dht: &mut DhtApi<'_, '_, TreeMsg<F::Data>>, topic: Id) {
        let now = dht.now();
        let me = me_contact(dht);
        let restricted = self.config.zone_restricted;
        let m = self.state.tree_mut(topic, now);
        m.joining = true;
        m.join_sent = now;
        self.state.stats.joins_sent += 1;
        dht.route(topic, TreeMsg::Join { topic, child: me }, restricted);
    }

    fn handle_broadcast(
        &mut self,
        dht: &mut DhtApi<'_, '_, TreeMsg<F::Data>>,
        from: NodeIdx,
        topic: Id,
        round: u64,
        depth: u16,
        data: Shared<F::Data>,
    ) {
        let now = dht.now();
        let me_addr = dht.addr();
        let record = self.config.record_events;
        let agg_timeout = self.config.agg_timeout;
        let m = self.state.tree_mut(topic, now);

        let from_parent = m.parent.map(|p| p.addr) == Some(from);
        if from_parent {
            m.last_parent_seen = now;
        } else if m.attached() && from != me_addr {
            // A stale parent still thinks we are its child: detach from it.
            dht.send_direct(
                from,
                TreeMsg::Leave {
                    topic,
                    child: me_addr,
                },
            );
            return;
        }

        if m.last_broadcast_round.is_some_and(|r| r >= round) {
            return; // Duplicate or stale broadcast.
        }
        m.last_broadcast_round = Some(round);
        // Bound per-round state over long trainings.
        m.prune_rounds(round.saturating_sub(8));
        if from_parent {
            m.depth = depth.saturating_add(1);
        }
        let my_depth = m.depth;
        let n_children = m.children.len();
        let subscriber = m.subscriber;
        let ra = m.rounds.entry(round).or_default();
        ra.expected = n_children;

        // Forward down the tree: the payload is already `Shared`, so each
        // per-child clone is a reference-count bump, and `dht` is a
        // separate borrow from the membership, so the child list is
        // iterated in place rather than cloned.
        for c in &m.children {
            dht.send_direct(
                c.addr,
                TreeMsg::Broadcast {
                    topic,
                    round,
                    depth: my_depth,
                    data: data.clone(),
                },
            );
        }
        self.state.stats.broadcasts_forwarded += n_children as u64;

        if record {
            self.state.broadcast_log.push(BroadcastEvent {
                topic,
                round,
                at: now,
                depth: my_depth,
            });
        }

        // Local participation.
        let mut local_contribution = false;
        if subscriber {
            let contribution = {
                let mut api = Self::api(&mut self.state, &self.config, dht);
                self.app.on_model(&mut api, topic, round, &data)
            };
            if let Some((update, delay)) = contribution {
                local_contribution = true;
                let m = self.state.tree_mut(topic, now);
                if let Some(ra) = m.rounds.get_mut(&round) {
                    ra.expected += 1;
                }
                dht.send_direct_after(
                    me_addr,
                    TreeMsg::AggregateUp {
                        topic,
                        round,
                        count: 1,
                        data: update,
                    },
                    delay,
                );
            }
        }
        // A childless node with nothing to contribute must tell its parent
        // immediately so the round does not stall on the straggler cutoff.
        if n_children == 0 && !local_contribution {
            let m = self.state.tree_mut(topic, now);
            if let Some(ra) = m.rounds.get_mut(&round) {
                ra.flushed = true;
            }
            if let Some(p) = m.parent {
                dht.send_direct(p.addr, TreeMsg::Abstain { topic, round });
            }
        }

        // Straggler cutoff for this round.
        let needs_timer = {
            let m = self.state.tree_mut(topic, now);
            let ra = m.rounds.entry(round).or_default();
            let arm = !ra.timer_armed && ra.expected > 0;
            ra.timer_armed = true;
            arm
        };
        if needs_timer {
            let mut api = Self::api(&mut self.state, &self.config, dht);
            api.arm_round_timer(topic, round, agg_timeout);
        }
    }

    fn handle_aggregate(
        &mut self,
        dht: &mut DhtApi<'_, '_, TreeMsg<F::Data>>,
        _from: NodeIdx,
        topic: Id,
        round: u64,
        count: u64,
        data: F::Data,
    ) {
        let now = dht.now();
        let agg_timeout = self.config.agg_timeout;
        let m = self.state.tree_mut(topic, now);
        let children_now = m.children.len();
        let is_root = m.is_root;
        let parent = m.parent;
        let ra = m.rounds.entry(round).or_default();

        if ra.flushed {
            // Late contribution: pass it through unmodified so it is not
            // lost; the master decides what to do with stragglers.
            self.state.stats.late_contributions += 1;
            if is_root {
                let mut api = Self::api(&mut self.state, &self.config, dht);
                self.app.on_aggregated(&mut api, topic, round, data, count);
            } else if let Some(p) = parent {
                dht.send_direct(
                    p.addr,
                    TreeMsg::AggregateUp {
                        topic,
                        round,
                        count,
                        data,
                    },
                );
                self.state.stats.aggregates_sent += 1;
            }
            return;
        }

        match &mut ra.acc {
            Some(acc) => acc.combine(&data),
            None => ra.acc = Some(data),
        }
        ra.count += count;
        ra.inputs += 1;
        if ra.expected == 0 {
            // We never saw this round's broadcast (joined mid-round):
            // expect one input per current child.
            ra.expected = children_now.max(ra.inputs);
        }
        let complete = ra.inputs >= ra.expected;
        let partial_count = ra.count;
        let needs_timer = !ra.timer_armed;
        if needs_timer {
            ra.timer_armed = true;
        }

        {
            let mut api = Self::api(&mut self.state, &self.config, dht);
            self.app.on_partial(&mut api, topic, round, partial_count);
        }
        if needs_timer {
            let mut api = Self::api(&mut self.state, &self.config, dht);
            api.arm_round_timer(topic, round, agg_timeout);
        }
        if complete {
            self.flush_round(dht, topic, round, false);
        }
        self.drain_flush_requests(dht);
    }

    /// A subtree reported that it has nothing for this round: count it as
    /// a received input without combining anything.
    fn handle_abstain(
        &mut self,
        dht: &mut DhtApi<'_, '_, TreeMsg<F::Data>>,
        topic: Id,
        round: u64,
    ) {
        let now = dht.now();
        let agg_timeout = self.config.agg_timeout;
        let m = self.state.tree_mut(topic, now);
        let children_now = m.children.len();
        let ra = m.rounds.entry(round).or_default();
        if ra.flushed {
            return;
        }
        ra.inputs += 1;
        if ra.expected == 0 {
            ra.expected = children_now.max(ra.inputs);
        }
        let complete = ra.inputs >= ra.expected;
        let needs_timer = !ra.timer_armed;
        if needs_timer {
            ra.timer_armed = true;
            let mut api = Self::api(&mut self.state, &self.config, dht);
            api.arm_round_timer(topic, round, agg_timeout);
        }
        if complete {
            self.flush_round(dht, topic, round, false);
        }
    }

    /// Pushes a round's accumulated aggregate up (or delivers it at the
    /// root). Idempotent.
    fn flush_round(
        &mut self,
        dht: &mut DhtApi<'_, '_, TreeMsg<F::Data>>,
        topic: Id,
        round: u64,
        by_timeout: bool,
    ) {
        let now = dht.now();
        let record = self.config.record_events;
        let m = self.state.tree_mut(topic, now);
        let is_root = m.is_root;
        let parent = m.parent;
        let Some(ra) = m.rounds.get_mut(&round) else {
            return;
        };
        if ra.flushed {
            return;
        }
        ra.flushed = true;
        let count = ra.count;
        let Some(acc) = ra.acc.take() else {
            // The whole subtree abstained: propagate the abstention so
            // ancestors do not wait out their straggler cutoff.
            if !is_root {
                if let Some(p) = parent {
                    dht.send_direct(p.addr, TreeMsg::Abstain { topic, round });
                }
            }
            return;
        };
        if by_timeout {
            self.state.stats.timeout_flushes += 1;
        }
        if is_root {
            if record {
                self.state.agg_log.push(AggEvent {
                    topic,
                    round,
                    at: now,
                    count,
                });
            }
            let mut api = Self::api(&mut self.state, &self.config, dht);
            self.app.on_aggregated(&mut api, topic, round, acc, count);
        } else if let Some(p) = parent {
            self.state.stats.aggregates_sent += 1;
            dht.send_direct(
                p.addr,
                TreeMsg::AggregateUp {
                    topic,
                    round,
                    count,
                    data: acc,
                },
            );
        }
        // Else: detached mid-round; the update is dropped and the straggler
        // cutoff at the ancestors absorbs the loss.
    }

    /// Applies flush requests queued by the application during callbacks.
    fn drain_flush_requests(&mut self, dht: &mut DhtApi<'_, '_, TreeMsg<F::Data>>) {
        while let Some((topic, round)) = self.state.pending_flush.pop() {
            self.flush_round(dht, topic, round, false);
        }
    }

    fn begin_repair(&mut self, dht: &mut DhtApi<'_, '_, TreeMsg<F::Data>>, topic: Id) {
        let now = dht.now();
        let m = self.state.tree_mut(topic, now);
        m.parent = None;
        if !m.subscriber && m.children.is_empty() {
            // A forwarder with no subtree left has nothing to repair: fall
            // out of the tree instead of re-joining.
            self.state.trees.remove(&topic);
            return;
        }
        self.state.repair_events.push(RepairEvent {
            topic,
            detected: now,
            reattached: None,
        });
        self.send_own_join(dht, topic);
    }

    fn forest_tick(&mut self, dht: &mut DhtApi<'_, '_, TreeMsg<F::Data>>) {
        let now = dht.now();
        self.last_tick = now;
        let tick = self.config.tick;
        let parent_timeout = tick.saturating_mul(u64::from(self.config.parent_timeout_ticks));
        let join_retry = tick.saturating_mul(u64::from(self.config.join_retry_ticks));
        let me = me_contact(dht);

        // Iterate the tree map in place (`dht` is a separate borrow); the
        // tick fires every node every few sim-seconds, so avoiding the
        // per-tick key collection matters. The repair/replan/rejoin lists
        // are almost always empty and allocate nothing then.
        let n_topics = self.state.trees.len() as u64;
        let max_depth = self.config.max_depth;
        let mut to_repair = Vec::new();
        let mut to_replan = Vec::new();
        let mut to_rejoin = Vec::new();
        #[cfg_attr(feature = "mc-bugs", allow(unused_mut))]
        let mut to_break = Vec::new();
        for (&topic, m) in self.state.trees.iter_mut() {
            // Keep-alive toward children.
            let depth = if m.is_root { 0 } else { m.depth };
            for c in &m.children {
                dht.send_direct(
                    c.addr,
                    TreeMsg::ParentHeartbeat {
                        topic,
                        depth,
                        sender: me,
                    },
                );
            }
            // Parent liveness: hard timeout, plus bandit bookkeeping (one
            // semi-bandit "attempt" per tick; success = heard this tick).
            if m.parent.is_some() {
                // "Heard" within two ticks tolerates heartbeat phase
                // offsets; a healthy link then scores ~1.0.
                let heard = now.saturating_since(m.last_parent_seen) <= tick.saturating_mul(2);
                m.parent_link.record(heard);
                if now.saturating_since(m.last_parent_seen) > parent_timeout {
                    to_repair.push(topic);
                } else if let Some(threshold) = self.config.replan_cost_threshold {
                    // Replan when even the optimistic (KL-UCB) view of the
                    // link says its expected delivery cost is too high.
                    let st = &m.parent_link;
                    if st.attempts >= 8 {
                        let log_tau = (st.attempts.max(2) as f64).ln();
                        if st.omega(log_tau) > threshold {
                            to_replan.push(topic);
                        }
                    }
                }
            }
            // Join retry.
            if m.joining && !m.attached() && now.saturating_since(m.join_sent) > join_retry {
                to_rejoin.push(topic);
            }
            // Parent-cycle detection: inside a loop, `parent depth + 1`
            // chases itself around the ring, so depth inflates by one per
            // tick without bound. `u16::MAX` is exempt — that is the
            // legitimate "unknown" sentinel a detached ancestor propagates.
            // Compiled out under `mc-bugs` along with the adopt-own-parent
            // guard, so a formed loop persists for the model checker's
            // structure oracle to flag (seeded bug FOREST-CYCLE).
            #[cfg(not(feature = "mc-bugs"))]
            if max_depth > 0
                && !m.is_root
                && m.parent.is_some()
                && m.depth >= max_depth
                && m.depth < u16::MAX
            {
                to_break.push(topic);
            }
            #[cfg(feature = "mc-bugs")]
            let _ = max_depth;
        }
        for topic in to_repair {
            self.begin_repair(dht, topic);
        }
        for topic in to_replan {
            // Leave the flaky parent cleanly, then re-route a JOIN; the
            // DHT's current view (which has likely also observed the
            // flakiness through transport failures) picks the new path.
            let me_addr = dht.addr();
            let m = self.state.tree_mut(topic, now);
            if let Some(p) = m.parent {
                dht.send_direct(
                    p.addr,
                    TreeMsg::Leave {
                        topic,
                        child: me_addr,
                    },
                );
            }
            m.parent_link = totoro_bandit::LinkStats::default();
            self.state.stats.replans += 1;
            self.begin_repair(dht, topic);
        }
        for topic in to_rejoin {
            self.send_own_join(dht, topic);
        }
        for topic in to_break {
            // Break the loop edge: leave the (live) parent explicitly so it
            // drops us from its children table and stops heartbeating the
            // cycle back into existence, then re-join via the rendezvous.
            let me_addr = dht.addr();
            let m = self.state.tree_mut(topic, now);
            if let Some(p) = m.parent {
                dht.send_direct(
                    p.addr,
                    TreeMsg::Leave {
                        topic,
                        child: me_addr,
                    },
                );
            }
            m.depth = u16::MAX;
            m.parent_link = totoro_bandit::LinkStats::default();
            self.state.stats.cycle_breaks += 1;
            self.begin_repair(dht, topic);
        }
        dht.charge_compute(
            ComputeKind::DhtTask,
            SimDuration::from_micros((2 * n_topics).saturating_add(10)),
        );
        dht.set_timer(tick, 0);
    }
}

impl<F: ForestApp> UpperLayer for Forest<F> {
    type P = TreeMsg<F::Data>;

    fn on_start(&mut self, api: &mut DhtApi<'_, '_, Self::P>) {
        if !self.started {
            self.started = true;
            api.set_timer(self.config.tick, 0);
            let mut fapi = Self::api(&mut self.state, &self.config, api);
            self.app.on_start(&mut fapi);
        }
    }

    fn on_deliver(
        &mut self,
        api: &mut DhtApi<'_, '_, Self::P>,
        key: Id,
        _origin: NodeIdx,
        payload: Self::P,
    ) {
        // Only JOINs are key-routed; everything else travels directly.
        if let TreeMsg::Join { child, .. } = payload {
            let now = api.now();
            let topic = key;
            let newly_root = {
                let m = self.state.tree_mut(topic, now);
                let newly = !m.is_root;
                m.is_root = true;
                m.joining = false;
                m.depth = 0;
                m.parent = None;
                newly
            };
            if newly_root {
                // Close any repair episode: we became the new rendezvous.
                if let Some(ev) = self
                    .state
                    .repair_events
                    .iter_mut()
                    .rev()
                    .find(|e| e.topic == topic && e.reattached.is_none())
                {
                    ev.reattached = Some(now);
                }
                let mut fapi = Self::api(&mut self.state, &self.config, api);
                self.app.on_became_root(&mut fapi, topic);
            }
            self.adopt_child(api, topic, child);
        }
    }

    fn on_forward(
        &mut self,
        api: &mut DhtApi<'_, '_, Self::P>,
        key: Id,
        _prev: NodeIdx,
        payload: &mut Self::P,
        _next: Contact,
    ) -> bool {
        let TreeMsg::Join { child, .. } = payload else {
            return true;
        };
        let topic = key;
        let child = *child;
        let now = api.now();
        let adopted = self.adopt_child(api, topic, child);
        let m = self.state.tree_mut(topic, now);
        if m.attached() || m.joining {
            // Already part of the tree: the JOIN path ends here (§4.3) —
            // unless the joiner was refused because it is our own parent,
            // in which case its JOIN keeps routing toward the rendezvous
            // so it can reattach above us rather than below.
            !adopted
        } else {
            // Become a forwarder: splice ourselves into the path and keep
            // routing our own JOIN toward the rendezvous.
            m.joining = true;
            m.join_sent = now;
            self.state.stats.joins_sent += 1;
            *payload = TreeMsg::Join {
                topic,
                child: me_contact(api),
            };
            true
        }
    }

    fn on_direct(&mut self, api: &mut DhtApi<'_, '_, Self::P>, from: NodeIdx, payload: Self::P) {
        let now = api.now();
        match payload {
            TreeMsg::Join { topic, child } => {
                // Push-down delegation from an overloaded ancestor: adopt
                // the newcomer here (or push it further down).
                self.adopt_child(api, topic, child);
            }
            TreeMsg::JoinAck {
                topic,
                parent,
                depth,
            } => {
                let m = self.state.tree_mut(topic, now);
                if m.is_root {
                    return; // Stale ack from a pre-takeover path.
                }
                let had_parent = m.parent.is_some();
                if m.parent.map(|p| p.addr) != Some(parent.addr) {
                    m.parent_link = totoro_bandit::LinkStats::default();
                }
                m.parent = Some(parent);
                m.depth = depth.saturating_add(1);
                m.joining = false;
                m.last_parent_seen = now;
                if !had_parent {
                    if let Some(ev) = self
                        .state
                        .repair_events
                        .iter_mut()
                        .rev()
                        .find(|e| e.topic == topic && e.reattached.is_none())
                    {
                        ev.reattached = Some(now);
                    }
                }
            }
            TreeMsg::Leave { topic, child } => {
                let m = self.state.tree_mut(topic, now);
                m.remove_child(child);
            }
            TreeMsg::Broadcast {
                topic,
                round,
                depth,
                data,
            } => {
                self.handle_broadcast(api, from, topic, round, depth, data);
            }
            TreeMsg::AggregateUp {
                topic,
                round,
                count,
                data,
            } => {
                self.handle_aggregate(api, from, topic, round, count, data);
            }
            TreeMsg::Abstain { topic, round } => {
                self.handle_abstain(api, topic, round);
            }
            TreeMsg::ParentHeartbeat {
                topic,
                depth,
                sender,
            } => {
                let m = self.state.tree_mut(topic, now);
                match m.parent {
                    Some(p) if p.addr == from => {
                        m.last_parent_seen = now;
                        m.depth = depth.saturating_add(1);
                    }
                    None if !m.is_root && (m.subscriber || !m.children.is_empty()) => {
                        // An orphaned child that still wants tree
                        // membership re-adopts a parent that carries it in
                        // its children table.
                        m.parent = Some(sender);
                        m.depth = depth.saturating_add(1);
                        m.last_parent_seen = now;
                        m.joining = false;
                    }
                    _ => {
                        // Heartbeat from a stale parent: detach from it.
                        if m.parent.map(|p| p.addr) != Some(from) {
                            let me_addr = api.addr();
                            api.send_direct(
                                from,
                                TreeMsg::Leave {
                                    topic,
                                    child: me_addr,
                                },
                            );
                        }
                    }
                }
            }
        }
    }

    fn on_timer(&mut self, api: &mut DhtApi<'_, '_, Self::P>, token: u64) {
        if token == 0 {
            self.forest_tick(api);
        } else if token % 2 == 1 {
            let app_token = (token - 1) / 2;
            {
                let mut fapi = Self::api(&mut self.state, &self.config, api);
                self.app.on_timer(&mut fapi, app_token);
            }
            self.drain_flush_requests(api);
        } else {
            let round_token = token / 2;
            if let Some((topic, round)) = self.state.round_timers.remove(&round_token) {
                self.flush_round(api, topic, round, true);
            }
        }
    }

    fn on_up(&mut self, api: &mut DhtApi<'_, '_, Self::P>) {
        // A live tick chain fires exactly every `tick`; anything staler
        // means the pending timer was swallowed during the outage and the
        // chain is dead. Only then re-arm (re-arming a live chain would
        // double every heartbeat from here on).
        //
        // Under `mc-bugs` the re-arm is compiled out, reintroducing the
        // pre-fix maintenance zombie: a revived node stays up but its tick
        // chain is dead forever (seeded bug MAINT-ZOMBIE).
        #[cfg(not(feature = "mc-bugs"))]
        if self.started && api.now().saturating_since(self.last_tick) > self.config.tick {
            self.last_tick = api.now();
            api.set_timer(self.config.tick, 0);
        }
        #[cfg(feature = "mc-bugs")]
        let _ = api;
    }

    fn on_peer_failed(&mut self, api: &mut DhtApi<'_, '_, Self::P>, addr: NodeIdx) {
        let topics: Vec<Id> = self.state.trees.keys().copied().collect();
        for topic in topics {
            let (was_parent, _had_child) = {
                let m = self.state.trees.get_mut(&topic).expect("topic exists");
                let was_parent = m.parent.map(|p| p.addr) == Some(addr);
                let had_child = m.remove_child(addr);
                (was_parent, had_child)
            };
            if was_parent {
                self.begin_repair(api, topic);
            }
        }
    }

    fn memory_bytes(&self) -> usize {
        self.state.memory_bytes() + self.app.memory_bytes()
    }
}
