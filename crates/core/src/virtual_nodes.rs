//! Virtual-node mapping for heterogeneous hardware (§7.5).
//!
//! "We make resource-rich physical edge nodes map to more 'P2P nodes' ...
//! physical nodes with 4 and 8 CPU cores can serve as 2 and 3 logical P2P
//! nodes in the DHT-based P2P overlay, respectively." A physical node with
//! `c` cores hosts `log2(c)` logical nodes (2→1, 4→2, 8→3), each logical
//! node inheriting the physical location and an equal share of bandwidth
//! and compute.

use totoro_simnet::{GeoPoint, NodeProfile, Topology};

/// The result of expanding a physical topology into logical P2P nodes.
#[derive(Clone, Debug)]
pub struct VirtualMapping {
    /// `physical_of[l]` = the physical node hosting logical node `l`.
    pub physical_of: Vec<usize>,
    /// The expanded logical topology to run the overlay on.
    pub logical: Topology,
}

/// Number of logical nodes a physical node with `cores` cores hosts.
pub fn logical_count(cores: u32) -> usize {
    (32 - cores.max(2).leading_zeros()) as usize - 1
}

/// Expands `physical` into a logical topology by the core rule.
pub fn expand_by_cores(
    physical: &Topology,
    latency: totoro_simnet::LatencyModel,
) -> VirtualMapping {
    let mut points: Vec<GeoPoint> = Vec::new();
    let mut regions = Vec::new();
    let mut profiles: Vec<NodeProfile> = Vec::new();
    let mut physical_of = Vec::new();
    for p in 0..physical.len() {
        let prof = physical.profile(p);
        let k = logical_count(prof.cores);
        for _ in 0..k {
            points.push(physical.point(p));
            regions.push(physical.region(p));
            profiles.push(NodeProfile {
                bandwidth_bps: (prof.bandwidth_bps / k as u64).max(1),
                compute_speed: prof.compute_speed / k as f64,
                cores: (prof.cores / k as u32).max(1),
            });
            physical_of.push(p);
        }
    }
    VirtualMapping {
        physical_of,
        logical: Topology::from_parts(points, regions, profiles, latency),
    }
}

/// Sums a per-logical-node metric back onto physical nodes.
pub fn fold_to_physical(
    mapping: &VirtualMapping,
    per_logical: &[u64],
    physical_len: usize,
) -> Vec<u64> {
    let mut out = vec![0u64; physical_len];
    for (l, &v) in per_logical.iter().enumerate() {
        out[mapping.physical_of[l]] += v;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use totoro_simnet::LatencyModel;

    #[test]
    fn core_rule_matches_paper_example() {
        assert_eq!(logical_count(2), 1);
        assert_eq!(logical_count(4), 2);
        assert_eq!(logical_count(8), 3);
        assert_eq!(logical_count(16), 4);
        // Degenerate hardware still hosts one logical node.
        assert_eq!(logical_count(1), 1);
    }

    #[test]
    fn expansion_replicates_rich_nodes() {
        let mut phys = Topology::uniform(3, 100, 100);
        phys.set_profile(
            1,
            NodeProfile {
                cores: 4,
                ..NodeProfile::default()
            },
        );
        phys.set_profile(
            2,
            NodeProfile {
                cores: 8,
                ..NodeProfile::default()
            },
        );
        let mapping = expand_by_cores(
            &phys,
            LatencyModel::Uniform {
                min_us: 100,
                max_us: 100,
            },
        );
        // 1 + 2 + 3 logical nodes.
        assert_eq!(mapping.logical.len(), 6);
        assert_eq!(mapping.physical_of, vec![0, 1, 1, 2, 2, 2]);
        // Shares divide resources.
        let l_of_2: Vec<usize> = (0..6).filter(|&l| mapping.physical_of[l] == 2).collect();
        for &l in &l_of_2 {
            let p = mapping.logical.profile(l);
            assert!(p.compute_speed < 0.4);
            assert!(p.bandwidth_bps <= NodeProfile::default().bandwidth_bps / 3);
        }
    }

    #[test]
    fn fold_back_sums_logical_metrics() {
        let mut phys = Topology::uniform(2, 1, 1);
        phys.set_profile(
            1,
            NodeProfile {
                cores: 4,
                ..NodeProfile::default()
            },
        );
        let mapping = expand_by_cores(
            &phys,
            LatencyModel::Uniform {
                min_us: 1,
                max_us: 1,
            },
        );
        let folded = fold_to_physical(&mapping, &[5, 7, 9], 2);
        assert_eq!(folded, vec![5, 16]);
    }

    #[test]
    fn rich_nodes_attract_more_load() {
        // More logical nodes = more id-space coverage = more expected work:
        // verified structurally by counting logical nodes per physical.
        let mut phys = Topology::uniform(4, 1, 1);
        phys.set_profile(
            0,
            NodeProfile {
                cores: 8,
                ..NodeProfile::default()
            },
        );
        let mapping = expand_by_cores(
            &phys,
            LatencyModel::Uniform {
                min_us: 1,
                max_us: 1,
            },
        );
        let counts: Vec<usize> = (0..4)
            .map(|p| mapping.physical_of.iter().filter(|&&x| x == p).count())
            .collect();
        assert_eq!(counts, vec![3, 1, 1, 1]);
    }
}
