//! The data type riding Totoro's dataflow trees.
//!
//! Downward (model broadcast) it carries the global weights; upward
//! (gradient aggregation) it carries a sample-weighted partial sum that
//! interior nodes combine in-network (§4.3 step 2). Wire size honours the
//! application's compression function on the leaf's first hop; partial
//! aggregates are dense (combining de-sparsifies).

use totoro_ml::{Compression, ModelUpdate};
use totoro_pubsub::TreeData;
use totoro_simnet::Payload;

/// Model or update data flowing through an application's tree.
///
/// Deliberately a plain owned struct, not a [`totoro_simnet::Shared`]
/// payload: `FlData` is *stored* in per-round aggregation state whose
/// `memory_bytes` accounting uses `size_of` on the stored type (Figure
/// 13b), and upward partials are mutated by `combine` at every interior
/// node. The broadcast fan-out still shares — the forest wraps the whole
/// `FlData` in `Shared` at the message layer (`TreeMsg::Broadcast`), so
/// per-child clones are refcount bumps (see DESIGN.md § "Simulator
/// performance").
#[derive(Clone, Debug)]
pub struct FlData {
    /// Raw values: global weights (downward) or `Σ weights_i · n_i`
    /// (upward).
    pub values: Vec<f32>,
    /// Samples behind `values` (0 marks a downward model).
    pub samples: u64,
    /// Serialized wire size in bytes.
    wire: usize,
}

impl FlData {
    /// A downward model broadcast.
    pub fn model(weights: &[f32]) -> Self {
        FlData {
            values: weights.to_vec(),
            samples: 0,
            wire: weights.len() * 4,
        }
    }

    /// A worker's upward contribution, sized per its compression scheme.
    pub fn update(u: ModelUpdate, compression: Compression) -> Self {
        let wire = compression.wire_bytes(u.weighted.len());
        FlData {
            values: u.weighted,
            samples: u.samples,
            wire,
        }
    }

    /// Whether this is a downward model (no samples behind it).
    pub fn is_model(&self) -> bool {
        self.samples == 0
    }

    /// Converts an upward payload back into a [`ModelUpdate`].
    pub fn into_update(self) -> ModelUpdate {
        ModelUpdate {
            weighted: self.values,
            samples: self.samples,
        }
    }
}

impl Payload for FlData {
    fn size_bytes(&self) -> usize {
        self.wire + 16
    }

    fn layer(&self) -> &'static str {
        "fl"
    }

    fn kind(&self) -> &'static str {
        if self.is_model() {
            "model"
        } else {
            "update"
        }
    }
}

impl TreeData for FlData {
    fn combine(&mut self, other: &Self) {
        if self.values.is_empty() {
            self.values = other.values.clone();
            self.samples = other.samples;
            self.wire = other.wire;
            return;
        }
        debug_assert_eq!(self.values.len(), other.values.len());
        for (a, b) in self.values.iter_mut().zip(&other.values) {
            *a += b;
        }
        self.samples += other.samples;
        // A combined partial is dense regardless of leaf compression.
        self.wire = self.values.len() * 4;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_and_update_roles() {
        let m = FlData::model(&[1.0, 2.0]);
        assert!(m.is_model());
        let u = FlData::update(ModelUpdate::from_client(&[1.0, 2.0], 5), Compression::None);
        assert!(!u.is_model());
        assert_eq!(u.into_update().samples, 5);
    }

    #[test]
    fn compression_shrinks_leaf_wire_size_only() {
        let w = vec![0.5; 1000];
        let dense = FlData::update(ModelUpdate::from_client(&w, 3), Compression::None);
        let mut sparse =
            FlData::update(ModelUpdate::from_client(&w, 3), Compression::TopK { k: 50 });
        assert!(sparse.size_bytes() < dense.size_bytes() / 2);
        // After combining, the partial is dense again.
        sparse.combine(&dense);
        assert_eq!(sparse.size_bytes(), 1000 * 4 + 16);
    }

    #[test]
    fn combine_matches_model_update_merge() {
        let a = ModelUpdate::from_client(&[1.0, -2.0], 4);
        let b = ModelUpdate::from_client(&[0.5, 3.0], 6);
        let mut fa = FlData::update(a.clone(), Compression::None);
        fa.combine(&FlData::update(b.clone(), Compression::None));
        let mut m = a;
        m.merge(&b);
        assert_eq!(fa.samples, m.samples);
        for (x, y) in fa.values.iter().zip(&m.weighted) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn combine_into_empty_adopts_other() {
        let mut empty = FlData {
            values: Vec::new(),
            samples: 0,
            wire: 0,
        };
        let u = FlData::update(ModelUpdate::from_client(&[2.0], 2), Compression::None);
        empty.combine(&u);
        assert_eq!(empty.samples, 2);
        assert_eq!(empty.values.len(), 1);
    }
}
