//! Role census over a running deployment (the Figure 5 measurements).
//!
//! Figure 5 studies how masters (tree roots), forwarders, and workers
//! spread over the edge topology. These helpers read the forest state of
//! every node and summarize it.

use totoro_dht::Id;
use totoro_pubsub::{Forest, ForestApp, ForestNode};
use totoro_simnet::{Simulator, TraceSink};

/// How many of `topics`' trees are rooted at each node (Figure 5b).
pub fn masters_per_node<F: ForestApp, S: TraceSink>(
    sim: &Simulator<ForestNode<F>, S>,
    topics: &[Id],
) -> Vec<usize> {
    let mut counts = vec![0usize; sim.len()];
    for (i, count) in counts.iter_mut().enumerate() {
        let forest: &Forest<F> = &sim.app(i).upper;
        *count = topics
            .iter()
            .filter(|&&t| forest.state.membership(t).is_some_and(|m| m.is_root))
            .count();
    }
    counts
}

/// Per-depth node counts of one tree (Figure 5d's branch distribution):
/// `result[d]` = number of attached nodes at depth `d` (root = depth 0).
pub fn level_census<F: ForestApp, S: TraceSink>(
    sim: &Simulator<ForestNode<F>, S>,
    topic: Id,
) -> Vec<usize> {
    let mut by_depth: Vec<usize> = Vec::new();
    for i in 0..sim.len() {
        let forest: &Forest<F> = &sim.app(i).upper;
        if let Some(m) = forest.state.membership(topic) {
            if m.attached() && m.depth != u16::MAX {
                let d = m.depth as usize;
                if by_depth.len() <= d {
                    by_depth.resize(d + 1, 0);
                }
                by_depth[d] += 1;
            }
        }
    }
    by_depth
}

/// Summary of one node's roles across all trees (any combination of
/// master / aggregator / worker, §4.3).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RoleCount {
    /// Trees rooted here (master).
    pub master: usize,
    /// Trees where this node forwards/aggregates (interior).
    pub aggregator: usize,
    /// Trees where this node is a leaf subscriber (worker).
    pub worker: usize,
}

/// Role counts for every node over `topics`.
pub fn role_census<F: ForestApp, S: TraceSink>(
    sim: &Simulator<ForestNode<F>, S>,
    topics: &[Id],
) -> Vec<RoleCount> {
    (0..sim.len())
        .map(|i| {
            let forest: &Forest<F> = &sim.app(i).upper;
            let mut rc = RoleCount::default();
            for &t in topics {
                if let Some(m) = forest.state.membership(t) {
                    if m.is_root {
                        rc.master += 1;
                    } else if !m.children.is_empty() {
                        rc.aggregator += 1;
                    } else if m.subscriber && m.attached() {
                        rc.worker += 1;
                    }
                }
            }
            rc
        })
        .collect()
}

/// Quantile of a sorted-able slice (nearest-rank). Returns 0 on empty.
pub fn quantile(values: &[usize], q: f64) -> usize {
    if values.is_empty() {
        return 0;
    }
    let mut v = values.to_vec();
    v.sort_unstable();
    let rank = ((q.clamp(0.0, 1.0)) * (v.len() - 1) as f64).round() as usize;
    v[rank]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantile_nearest_rank() {
        let v = vec![5, 1, 3, 2, 4];
        assert_eq!(quantile(&v, 0.0), 1);
        assert_eq!(quantile(&v, 0.5), 3);
        assert_eq!(quantile(&v, 1.0), 5);
        assert_eq!(quantile(&[], 0.5), 0);
    }
}
