//! # totoro
//!
//! A from-scratch Rust reproduction of **Totoro: A Scalable Federated
//! Learning Engine for the Edge** (EuroSys '24): a fully decentralized
//! "many masters / many workers" FL engine in which every edge node can be
//! any application's coordinator, aggregator, client selector, or worker.
//!
//! The stack (paper §4):
//!
//! | Layer | Crate | Paper section |
//! |-------|-------|---------------|
//! | Locality-aware P2P multi-ring DHT | [`totoro_dht`] | §4.2 |
//! | Publish/subscribe forest | [`totoro_pubsub`] | §4.3 |
//! | Bandit path planning | [`totoro_bandit`] | §5 |
//! | FL engine + high-level API | this crate | §4.4 |
//!
//! ## Table 2 API mapping
//!
//! | Paper call | This implementation |
//! |------------|---------------------|
//! | `Join(IP, port, site)` | nodes join at [`TotoroDeployment::new`] (protocol-level joins live in `totoro_dht::DhtNode`) |
//! | `CreateTree(app_id)` | [`totoro_pubsub::ForestApi::create_tree`] / first `Subscribe` |
//! | `Subscribe(app_id)` | [`totoro_pubsub::ForestApi::subscribe`]; selection policy in [`FlAppConfig::selection`] |
//! | `Broadcast(app_id, object)` | [`totoro_pubsub::ForestApi::broadcast`]; compression in [`FlAppConfig::compression`] |
//! | `onBroadcast` | [`totoro_pubsub::ForestApp::on_model`] (implemented by [`FlEngine`]) |
//! | `Aggregate(app_id, object)` | in-network combining via [`totoro_pubsub::TreeData`]; rule in [`FlAppConfig::aggregation`] |
//! | `onAggregate` | [`totoro_pubsub::ForestApp::on_aggregated`] / [`totoro_pubsub::ForestApp::on_partial`] |
//! | `onTimer` | [`totoro_pubsub::ForestApp::on_timer`] |
//!
//! ## Quickstart
//!
//! See `examples/quickstart.rs` for an end-to-end run: build an overlay,
//! submit applications, train to target accuracy, read the curves.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod deploy;
pub mod engine;
pub mod roles;
pub mod update;
pub mod virtual_nodes;

pub use config::{FlAppConfig, RoundPolicy, SelectionPolicy};
pub use deploy::{TotoroDeployment, TotoroNode};
pub use engine::{EngineStats, FlEngine, MasterState};
pub use roles::{level_census, masters_per_node, quantile, role_census, RoleCount};
pub use update::FlData;
pub use virtual_nodes::{expand_by_cores, fold_to_physical, logical_count, VirtualMapping};

// Re-export the substrate crates so downstream users need one dependency.
pub use totoro_bandit as bandit;
pub use totoro_dht as dht;
pub use totoro_ml as ml;
pub use totoro_pubsub as pubsub;
pub use totoro_simnet as simnet;
