//! Per-application FL configuration (Table 2's customization points).
//!
//! Totoro "supports application-specific customization, allowing
//! application owners to set their own FL policies" (§4.4): the
//! aggregation function, compression function, client-selection function,
//! privacy technique, and zone restriction are all per-application knobs.

use std::sync::Arc;

use totoro_dht::Id;
use totoro_ml::{AggregationRule, Compression, Dataset, Privacy};
use totoro_simnet::{NodeIdx, SimDuration};

/// Client-selection policy, evaluated worker-side from the round number
/// (Table 2: "Application owner can specify her client selection function
/// in the API").
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum SelectionPolicy {
    /// Every subscriber trains every round.
    All,
    /// Each subscriber participates independently with this probability,
    /// decided by a per-(app, round, node) hash — deterministic yet
    /// uncorrelated across rounds.
    Fraction(f64),
    /// Oort-inspired utility-based selection \[55\], decentralized: each
    /// worker self-assesses its statistical utility from its most recent
    /// local training loss and participates with probability
    /// `floor + (1 - floor) · (1 - e^{-loss})` — high-loss (most useful)
    /// clients train nearly every round, converged clients back off to the
    /// floor. Worker-side evaluation needs no central view, matching
    /// Totoro's decentralized client-selector role.
    LossAdaptive {
        /// Minimum participation probability for converged clients.
        floor: f64,
    },
}

impl SelectionPolicy {
    /// Whether `node` participates in `round` of the app salted `seed`.
    /// `last_loss` is the worker's most recent mean training loss (if it
    /// has trained before); only used by [`SelectionPolicy::LossAdaptive`].
    pub fn participates(
        &self,
        seed: u64,
        round: u64,
        node: NodeIdx,
        last_loss: Option<f32>,
    ) -> bool {
        let draw = || {
            let h = totoro_simnet::derive_seed(
                seed ^ round.wrapping_mul(0x9E37_79B9_7F4A_7C15),
                &format!("select-{node}"),
            );
            h as f64 / u64::MAX as f64
        };
        match *self {
            SelectionPolicy::All => true,
            SelectionPolicy::Fraction(f) => draw() < f,
            SelectionPolicy::LossAdaptive { floor } => {
                let p = match last_loss {
                    // Never trained: maximal utility, always participate.
                    None => 1.0,
                    Some(loss) => {
                        let util = 1.0 - (-f64::from(loss.max(0.0))).exp();
                        floor.clamp(0.0, 1.0) + (1.0 - floor.clamp(0.0, 1.0)) * util
                    }
                };
                draw() < p
            }
        }
    }
}

/// Round-completion protocol (§2.2.1's synchronous vs semi-synchronous
/// communication protocols).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum RoundPolicy {
    /// Wait for every expected contribution (modulo the straggler cutoff).
    Synchronous,
    /// Complete the round once this fraction of the expected participants
    /// contributed — the semi-synchronous mode of FedAT-style systems.
    SemiSynchronous {
        /// Fraction of expected participants required (0, 1].
        quorum: f64,
    },
}

/// The full specification of one FL application.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use totoro::FlAppConfig;
/// use totoro::ml::{Compression, Dataset, Privacy};
///
/// let mut cfg = FlAppConfig::new("activity-recognition", vec![24, 32, 4],
///                                Arc::new(Dataset::default()));
/// cfg.compression = Compression::Int8;
/// cfg.privacy = Privacy::GaussianDp { clip: 10.0, sigma: 0.01 };
/// // The AppId (tree topic / rendezvous key) derives from name + salt.
/// assert_ne!(cfg.app_id(), {
///     let mut other = cfg.clone();
///     other.salt = 1;
///     other.app_id()
/// });
/// ```
#[derive(Clone, Debug)]
pub struct FlAppConfig {
    /// Application name (hashed into the AppId).
    pub name: String,
    /// Salt mixed into the AppId (§4.3a).
    pub salt: u64,
    /// MLP layer dimensions `[input, hidden..., classes]`.
    pub model_dims: Vec<usize>,
    /// Aggregation rule.
    pub aggregation: AggregationRule,
    /// Compression applied to worker updates.
    pub compression: Compression,
    /// Privacy technique applied to worker updates (§4.4).
    pub privacy: Privacy,
    /// Client-selection policy.
    pub selection: SelectionPolicy,
    /// Round-completion protocol.
    pub round_policy: RoundPolicy,
    /// Number of participants subscribed at submission (set by
    /// `TotoroDeployment::submit_app`; used by the semi-synchronous quorum).
    pub expected_participants: usize,
    /// The participant roster (set by `TotoroDeployment::submit_app`; used
    /// by secure aggregation's pairwise masking).
    pub participant_list: Vec<NodeIdx>,
    /// Local epochs per round.
    pub local_epochs: usize,
    /// Minibatch size (paper: 20).
    pub batch_size: usize,
    /// Client learning rate (paper: 0.05 / 0.1).
    pub lr: f32,
    /// Target test accuracy; the master stops when reached.
    pub target_accuracy: f64,
    /// Hard cap on rounds.
    pub max_rounds: u64,
    /// Pause between a round's completion and the next broadcast (also the
    /// delay before round 1 so the tree can assemble).
    pub round_pause: SimDuration,
    /// Master-side watchdog: if a round has not completed this long after
    /// its broadcast (e.g. the whole wave was lost to churn), the master
    /// starts the next round anyway.
    pub round_timeout: SimDuration,
    /// Whether the application's traffic is confined to its home edge zone
    /// (§4.2 administrative isolation).
    pub zone_restricted: bool,
    /// For zone-restricted apps: `(zone, zone_bits)` of the home zone. The
    /// AppId's zone prefix is forced into this zone so the rendezvous node
    /// — and therefore every JOIN path — stays inside the edge site.
    pub home_zone: Option<(u64, u32)>,
    /// Held-out test set evaluated by the master.
    pub test_set: Arc<Dataset>,
    /// Weight-initialization seed.
    pub seed: u64,
}

impl FlAppConfig {
    /// The application's AppId: `hash(name, creator key, salt)` (§4.3a);
    /// this is the tree topic and rendezvous key.
    pub fn app_id(&self) -> Id {
        let raw = totoro_dht::app_id(&self.name, "totoro-app-owner", self.salt);
        match self.home_zone {
            None => raw,
            Some((zone, zone_bits)) => Id::compose(zone, zone_bits, raw.suffix(zone_bits)),
        }
    }

    /// A reasonable default configuration for `name` over `test_set`.
    pub fn new(name: &str, model_dims: Vec<usize>, test_set: Arc<Dataset>) -> Self {
        FlAppConfig {
            name: name.to_string(),
            salt: 0,
            model_dims,
            aggregation: AggregationRule::FedAvg,
            compression: Compression::None,
            privacy: Privacy::None,
            selection: SelectionPolicy::All,
            round_policy: RoundPolicy::Synchronous,
            expected_participants: 0,
            participant_list: Vec::new(),
            local_epochs: 1,
            batch_size: 20,
            lr: 0.1,
            target_accuracy: 0.99,
            max_rounds: 50,
            round_pause: SimDuration::from_secs(2),
            round_timeout: SimDuration::from_secs(120),
            zone_restricted: false,
            home_zone: None,
            test_set,
            seed: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(name: &str, salt: u64) -> FlAppConfig {
        let mut c = FlAppConfig::new(name, vec![4, 8, 2], Arc::new(Dataset::default()));
        c.salt = salt;
        c
    }

    #[test]
    fn app_ids_differ_by_name_and_salt() {
        assert_ne!(cfg("a", 0).app_id(), cfg("b", 0).app_id());
        assert_ne!(cfg("a", 0).app_id(), cfg("a", 1).app_id());
        assert_eq!(cfg("a", 0).app_id(), cfg("a", 0).app_id());
    }

    #[test]
    fn home_zone_pins_the_rendezvous_key() {
        let mut c = cfg("regional", 3);
        let global = c.app_id();
        c.home_zone = Some((9, 4));
        let pinned = c.app_id();
        assert_eq!(pinned.zone(4), 9);
        assert_eq!(pinned.suffix(4), global.suffix(4));
    }

    #[test]
    fn selection_all_always_participates() {
        let s = SelectionPolicy::All;
        assert!(s.participates(1, 1, 1, None));
    }

    #[test]
    fn loss_adaptive_prefers_high_loss_clients() {
        let s = SelectionPolicy::LossAdaptive { floor: 0.2 };
        let n = 4_000;
        let rate = |loss: Option<f32>| {
            (0..n).filter(|&i| s.participates(9, 3, i, loss)).count() as f64 / n as f64
        };
        // Untrained clients always go.
        assert!(rate(None) > 0.999);
        // High loss ~ always; low loss ~ floor.
        assert!(rate(Some(4.0)) > 0.9);
        let low = rate(Some(0.01));
        assert!((0.12..=0.32).contains(&low), "low-loss rate {low}");
        assert!(rate(Some(4.0)) > rate(Some(0.3)));
    }

    #[test]
    fn selection_fraction_matches_rate_and_varies_by_round() {
        let s = SelectionPolicy::Fraction(0.3);
        let n = 10_000;
        let hits = (0..n).filter(|&i| s.participates(42, 1, i, None)).count();
        let rate = hits as f64 / n as f64;
        assert!((rate - 0.3).abs() < 0.03, "rate {rate}");
        // The selected set changes between rounds.
        let r1: Vec<bool> = (0..200).map(|i| s.participates(42, 1, i, None)).collect();
        let r2: Vec<bool> = (0..200).map(|i| s.participates(42, 2, i, None)).collect();
        assert_ne!(r1, r2);
        // Deterministic per round.
        let r1b: Vec<bool> = (0..200).map(|i| s.participates(42, 1, i, None)).collect();
        assert_eq!(r1, r1b);
    }
}
