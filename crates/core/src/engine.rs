//! The Totoro FL engine: the application layer running on every node.
//!
//! Role assignment follows §4.3 step 1d: for each application's tree, the
//! *root* node is the master (coordinator + aggregator + final model
//! owner), *interior* nodes aggregate in-network, and *leaf* subscribers
//! are the workers. Because roles are per-tree, one node simultaneously
//! plays different roles for different applications — the
//! "many masters / many workers" architecture.

use std::collections::HashMap; // det: allow(unordered: import only; every declaration and construction site below carries its own proof)
use std::sync::Arc;

use totoro_dht::Id;
use totoro_ml::{accuracy, AccuracyPoint, Dataset, Mlp, ModelUpdate};
use totoro_pubsub::{ForestApi, ForestApp};
use totoro_simnet::{ComputeKind, NodeIdx, SimDuration, SimTime};

use crate::config::{FlAppConfig, RoundPolicy};
use crate::update::FlData;

/// The master-side state of one application (lives at the tree root).
#[derive(Debug)]
pub struct MasterState {
    /// Application index in the registry.
    pub app: usize,
    /// The global model.
    pub model: Mlp,
    /// Current round (0 = not yet started).
    pub round: u64,
    /// Time-to-accuracy curve.
    pub curve: Vec<AccuracyPoint>,
    /// When this node became the master.
    pub started_at: SimTime,
    /// Whether the target accuracy (or round cap) was reached.
    pub done: bool,
}

/// Engine counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct EngineStats {
    /// Models received as a worker.
    pub models_received: u64,
    /// Updates this node contributed as a worker.
    pub updates_contributed: u64,
    /// Rounds this node started as a master.
    pub rounds_started: u64,
    /// Aggregations completed at this node as a master.
    pub rounds_completed: u64,
}

/// The per-node FL engine (implements the forest's application trait).
pub struct FlEngine {
    addr: NodeIdx,
    /// Application registry (same order on every node).
    registry: Vec<Arc<FlAppConfig>>,
    // det: allow(unordered: keyed topic->index lookup only; never iterated)
    topic_to_app: HashMap<Id, usize>,
    // det: allow(unordered: keyed get/insert by app id; `values()` only feeds the commutative byte-count sum in `memory_bytes`)
    shards: HashMap<usize, Dataset>,
    // det: allow(unordered: keyed get/entry by app id; `values()` only feeds the commutative parameter-count sum in `memory_bytes`)
    replicas: HashMap<usize, Mlp>,
    /// Most recent local mean training loss per app (feeds LossAdaptive
    /// selection).
    // det: allow(unordered: keyed get/insert by app id only; never iterated)
    last_loss: HashMap<usize, f32>,
    /// Master state per application (present only where this node is/was
    /// the root).
    // det: allow(unordered: keyed access by app id; `values()` only feeds the commutative parameter-count sum in `memory_bytes`, and role censuses iterate nodes probing per key — see roles.rs)
    pub masters: HashMap<usize, MasterState>,
    /// Counters.
    pub stats: EngineStats,
}

impl FlEngine {
    /// Creates the engine for the node at `addr`.
    pub fn new(addr: NodeIdx) -> Self {
        FlEngine {
            addr,
            registry: Vec::new(),
            topic_to_app: HashMap::new(), // det: allow(unordered: construction of the key-only map proven at its field declaration)
            shards: HashMap::new(), // det: allow(unordered: construction of the key-only map proven at its field declaration)
            replicas: HashMap::new(), // det: allow(unordered: construction of the key-only map proven at its field declaration)
            last_loss: HashMap::new(), // det: allow(unordered: construction of the key-only map proven at its field declaration)
            masters: HashMap::new(), // det: allow(unordered: construction of the key-only map proven at its field declaration)
            stats: EngineStats::default(),
        }
    }

    /// Registers an application spec; every node registers the same specs
    /// in the same order (the app catalog is global metadata).
    pub fn register_app(&mut self, config: Arc<FlAppConfig>) -> usize {
        let app = self.registry.len();
        self.topic_to_app.insert(config.app_id(), app);
        self.registry.push(config);
        app
    }

    /// Installs this node's training shard for application `app`.
    pub fn install_shard(&mut self, app: usize, shard: Dataset) {
        self.shards.insert(app, shard);
    }

    /// The registered config of `app`.
    pub fn config(&self, app: usize) -> &Arc<FlAppConfig> {
        &self.registry[app]
    }

    /// Number of registered applications.
    pub fn num_apps(&self) -> usize {
        self.registry.len()
    }

    /// The application index owning `topic`, if registered.
    pub fn app_of_topic(&self, topic: Id) -> Option<usize> {
        self.topic_to_app.get(&topic).copied()
    }

    fn fresh_model(config: &FlAppConfig) -> Mlp {
        let mut rng = rand::SeedableRng::seed_from_u64(config.seed);
        Mlp::new(&config.model_dims, &mut rng)
    }

    fn start_round(&mut self, api: &mut ForestApi<'_, '_, '_, FlData>, app: usize) {
        let config = Arc::clone(&self.registry[app]);
        let topic = config.app_id();
        if api.children_count(topic) == 0 {
            // The tree has not assembled yet (or lost all children):
            // retry later without consuming a round.
            if self.masters.get(&app).is_some_and(|m| !m.done) {
                api.set_app_timer(config.round_pause, app as u64 * 2);
            }
            return;
        }
        let (round, weights) = {
            let Some(master) = self.masters.get_mut(&app) else {
                return;
            };
            if master.done {
                return;
            }
            master.round += 1;
            self.stats.rounds_started += 1;
            (master.round, master.model.to_weights())
        };
        // A master that also subscribed as a worker trains like any other
        // participant ("any combination of roles", §4.3) — required for
        // secure aggregation's roster to be complete.
        let local = self.train_update(api, app, round, &weights);
        // Serialization cost (§6's binary-array mechanism).
        api.charge_compute(
            ComputeKind::FlTask,
            SimDuration::from_micros((weights.len() as u64 / 100).saturating_add(5)),
        );
        api.broadcast_expecting_local(topic, round, FlData::model(&weights), local.is_some());
        if let Some((update, delay)) = local {
            api.contribute(topic, round, update, delay);
        }
        // Watchdog: if the whole aggregation wave is lost, move on.
        api.set_app_timer(config.round_timeout, app as u64 * 2 + 1);
    }

    /// Trains this node's replica of `app` from `weights` and produces its
    /// (privacy-processed, compressed) contribution plus the simulated
    /// training time; `None` when the node has no shard or was not
    /// selected this round.
    fn train_update(
        &mut self,
        api: &mut ForestApi<'_, '_, '_, FlData>,
        app: usize,
        round: u64,
        weights_in: &[f32],
    ) -> Option<(FlData, SimDuration)> {
        let config = Arc::clone(&self.registry[app]);
        let shard_len = self.shards.get(&app)?.len();
        if shard_len == 0 {
            return None;
        }
        if !config.selection.participates(
            config.seed ^ config.salt,
            round,
            self.addr,
            self.last_loss.get(&app).copied(),
        ) {
            return None;
        }

        // Real local training on the local shard.
        let replica = self
            .replicas
            .entry(app)
            .or_insert_with(|| Self::fresh_model(&config));
        replica.from_weights(weights_in);
        let shard = self.shards.get(&app).expect("shard checked above");
        let mu = config.aggregation.mu();
        let mut mean_loss = 0.0;
        for _ in 0..config.local_epochs {
            mean_loss = if mu > 0.0 {
                replica.train_epoch(
                    &shard.xs,
                    &shard.ys,
                    config.batch_size,
                    config.lr,
                    Some((mu, weights_in)),
                )
            } else {
                replica.train_epoch(&shard.xs, &shard.ys, config.batch_size, config.lr, None)
            };
        }
        self.last_loss.insert(app, mean_loss);
        let mut weights = replica.to_weights();
        totoro_ml::apply_privacy(config.privacy, &mut weights, api.rng());

        // Charge the training time on the simulated clock.
        let flops = replica.flops_per_sample() * (shard_len * config.local_epochs) as u64;
        let me = api.addr();
        let train_time = api.topology().profile(me).compute_time(flops);
        api.charge_compute(ComputeKind::FlTask, train_time);
        self.stats.updates_contributed += 1;

        let mut update = ModelUpdate::from_client(&weights, shard_len as u64);
        if config.privacy == totoro_ml::Privacy::SecureAggregation {
            totoro_ml::apply_pairwise_masks(
                &mut update.weighted,
                self.addr,
                &config.participant_list,
                config.seed ^ config.salt,
                round,
            );
        }
        Some((FlData::update(update, config.compression), train_time))
    }
}

impl ForestApp for FlEngine {
    type Data = FlData;

    fn on_model(
        &mut self,
        api: &mut ForestApi<'_, '_, '_, FlData>,
        topic: Id,
        round: u64,
        data: &FlData,
    ) -> Option<(FlData, SimDuration)> {
        let app = self.app_of_topic(topic)?;
        self.stats.models_received += 1;
        let weights = data.values.clone();
        self.train_update(api, app, round, &weights)
    }

    fn on_aggregated(
        &mut self,
        api: &mut ForestApi<'_, '_, '_, FlData>,
        topic: Id,
        round: u64,
        data: FlData,
        count: u64,
    ) {
        let Some(app) = self.app_of_topic(topic) else {
            return;
        };
        let config = Arc::clone(&self.registry[app]);
        // Evaluation cost at the master.
        let eval_flops =
            (config.test_set.len() as u64) * 2 * (Self::fresh_model(&config).num_params() as u64);
        let me = api.addr();
        let eval_time = api.topology().profile(me).compute_time(eval_flops);
        let Some(master) = self.masters.get_mut(&app) else {
            return; // Aggregate arrived after a master migration.
        };
        if master.done || round != master.round {
            return; // Stale round (straggler flush from an earlier wave).
        }
        if master.curve.last().is_some_and(|p| p.round >= round) {
            // The round already completed (e.g. a quorum cutoff); late
            // straggler contributions are dropped, as in semi-synchronous
            // FL. (FedAT-style staleness-weighted merging is future work.)
            return;
        }
        let update = data.into_update();
        // Secure aggregation: masks only cancel when the whole roster
        // contributed; an incomplete round would apply masked noise to the
        // model, so it is discarded instead.
        let secure_and_incomplete = config.privacy == totoro_ml::Privacy::SecureAggregation
            && (count as usize) < config.expected_participants;
        if !secure_and_incomplete {
            if let Some(avg) = update.finalize() {
                master.model.from_weights(&avg);
            }
        }
        api.charge_compute(ComputeKind::FlTask, eval_time);
        let acc = accuracy(&master.model, &config.test_set);
        let at = api.now() + eval_time;
        master.curve.push(AccuracyPoint {
            time_secs: at.as_secs_f64(),
            round,
            accuracy: acc,
        });
        self.stats.rounds_completed += 1;
        if acc >= config.target_accuracy || round >= config.max_rounds {
            master.done = true;
        } else {
            api.set_app_timer(config.round_pause, app as u64 * 2);
        }
    }

    fn on_partial(
        &mut self,
        api: &mut ForestApi<'_, '_, '_, FlData>,
        topic: Id,
        round: u64,
        count: u64,
    ) {
        // Semi-synchronous quorum: the master cuts the round as soon as
        // enough leaf contributions are in.
        let Some(app) = self.app_of_topic(topic) else {
            return;
        };
        let config = &self.registry[app];
        if let RoundPolicy::SemiSynchronous { quorum } = config.round_policy {
            let is_master = self
                .masters
                .get(&app)
                .is_some_and(|m| !m.done && m.round == round);
            if is_master {
                let expected = config.expected_participants.max(1) as f64;
                if count as f64 >= quorum * expected {
                    api.request_flush(topic, round);
                }
            }
        }
    }

    fn on_became_root(&mut self, api: &mut ForestApi<'_, '_, '_, FlData>, topic: Id) {
        let Some(app) = self.app_of_topic(topic) else {
            return; // A tree whose app we do not know (not an FL topic).
        };
        if self.masters.contains_key(&app) {
            return;
        }
        let config = &self.registry[app];
        // Master takeover warm-starts from the local replica when this
        // node trained the app before; otherwise from the seed init.
        let model = self
            .replicas
            .get(&app)
            .cloned()
            .unwrap_or_else(|| Self::fresh_model(config));
        self.masters.insert(
            app,
            MasterState {
                app,
                model,
                round: 0,
                curve: Vec::new(),
                started_at: api.now(),
                done: false,
            },
        );
        // Give the tree time to assemble before round 1.
        api.set_app_timer(config.round_pause, app as u64 * 2);
    }

    fn on_timer(&mut self, api: &mut ForestApi<'_, '_, '_, FlData>, token: u64) {
        let app = (token / 2) as usize;
        if app >= self.registry.len() {
            return;
        }
        if token.is_multiple_of(2) {
            // Scheduled next round.
            self.start_round(api, app);
        } else {
            // Watchdog: only fire when the current round never completed.
            let stalled = self.masters.get(&app).is_some_and(|m| {
                !m.done && m.round > 0 && m.curve.last().map_or(0, |p| p.round) < m.round
            });
            if stalled {
                self.start_round(api, app);
            }
        }
    }

    fn memory_bytes(&self) -> usize {
        let models: usize = self
            .replicas
            .values()
            .chain(self.masters.values().map(|m| &m.model))
            .map(|m| m.num_params() * 4)
            .sum();
        let shards: usize = self
            .shards
            .values()
            .map(|s| s.len() * (s.dim() + 1) * 4)
            .sum();
        models + shards + std::mem::size_of::<Self>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_maps_topics() {
        let mut e = FlEngine::new(3);
        let cfg = Arc::new(FlAppConfig::new(
            "alpha",
            vec![4, 8, 2],
            Arc::new(Dataset::default()),
        ));
        let app = e.register_app(Arc::clone(&cfg));
        assert_eq!(app, 0);
        assert_eq!(e.app_of_topic(cfg.app_id()), Some(0));
        assert_eq!(e.app_of_topic(Id::new(1)), None);
        assert_eq!(e.num_apps(), 1);
    }

    #[test]
    fn shard_installation() {
        let mut e = FlEngine::new(0);
        let cfg = Arc::new(FlAppConfig::new(
            "beta",
            vec![4, 8, 2],
            Arc::new(Dataset::default()),
        ));
        e.register_app(cfg);
        e.install_shard(
            0,
            Dataset {
                xs: vec![vec![0.0; 4]; 3],
                ys: vec![0, 1, 0],
                classes: 2,
            },
        );
        assert!(e.memory_bytes() > 0);
    }
}
