//! `totoro-sim` — run a Totoro deployment from the command line.
//!
//! A thin driver over [`totoro::TotoroDeployment`] for exploring the engine
//! without writing code:
//!
//! ```text
//! totoro-sim --nodes 64 --apps 3 --dataset speech --fanout 16 \
//!            --selection fraction:0.5 --privacy dp:10:0.01 \
//!            --aggregation fedprox:0.05 --churn 0.05 --seed 7
//! ```
//!
//! Flags (all optional):
//!
//! | flag | default | meaning |
//! |------|---------|---------|
//! | `--nodes N` | 48 | edge nodes in the overlay |
//! | `--apps K` | 1 | concurrent FL applications |
//! | `--dataset D` | `speech` | `speech` \| `femnist` \| `text` |
//! | `--fanout F` | 16 | tree fanout (8/16/32 per the paper) |
//! | `--samples S` | 40 | training samples per client |
//! | `--alpha A` | 0.5 | Dirichlet non-IID concentration |
//! | `--rounds R` | 60 | max rounds per app |
//! | `--target T` | dataset default | target test accuracy |
//! | `--selection P` | `all` | `all` \| `fraction:F` \| `loss:FLOOR` |
//! | `--aggregation G` | `fedavg` | `fedavg` \| `fedprox:MU` |
//! | `--compression C` | `none` | `none` \| `int8` \| `topk:K` |
//! | `--privacy V` | `none` | `none` \| `dp:CLIP:SIGMA` \| `secagg` |
//! | `--quorum Q` | off | semi-synchronous quorum fraction |
//! | `--churn F` | 0 | fraction of nodes failing mid-training |
//! | `--geo` | off | EUA-shaped geographic topology |
//! | `--seed S` | 1 | experiment seed |

use std::sync::Arc;

use totoro::dht::DhtConfig;
use totoro::ml::{
    femnist_like, speech_commands_like, text_classification_like, AggregationRule, Compression,
    Privacy, TaskGenerator,
};
use totoro::pubsub::ForestConfig;
use totoro::simnet::geo::{eua_regions_scaled, generate};
use totoro::simnet::{sub_rng, ChurnSchedule, LatencyModel, SimTime, Topology};
use totoro::{FlAppConfig, RoundPolicy, SelectionPolicy, TotoroDeployment};

fn arg(args: &[String], key: &str) -> Option<String> {
    let flag = format!("--{key}");
    args.iter()
        .position(|a| *a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn arg_or<T: std::str::FromStr>(args: &[String], key: &str, default: T) -> T {
    arg(args, key)
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn parse_selection(s: &str) -> SelectionPolicy {
    let mut parts = s.split(':');
    match parts.next() {
        Some("fraction") => {
            SelectionPolicy::Fraction(parts.next().and_then(|v| v.parse().ok()).unwrap_or(0.5))
        }
        Some("loss") => SelectionPolicy::LossAdaptive {
            floor: parts.next().and_then(|v| v.parse().ok()).unwrap_or(0.2),
        },
        _ => SelectionPolicy::All,
    }
}

fn parse_aggregation(s: &str) -> AggregationRule {
    let mut parts = s.split(':');
    match parts.next() {
        Some("fedprox") => AggregationRule::FedProx {
            mu: parts.next().and_then(|v| v.parse().ok()).unwrap_or(0.05),
        },
        _ => AggregationRule::FedAvg,
    }
}

fn parse_compression(s: &str) -> Compression {
    let mut parts = s.split(':');
    match parts.next() {
        Some("int8") => Compression::Int8,
        Some("topk") => Compression::TopK {
            k: parts.next().and_then(|v| v.parse().ok()).unwrap_or(100),
        },
        _ => Compression::None,
    }
}

fn parse_privacy(s: &str) -> Privacy {
    let mut parts = s.split(':');
    match parts.next() {
        Some("dp") => Privacy::GaussianDp {
            clip: parts.next().and_then(|v| v.parse().ok()).unwrap_or(10.0),
            sigma: parts.next().and_then(|v| v.parse().ok()).unwrap_or(0.01),
        },
        Some("secagg") => Privacy::SecureAggregation,
        _ => Privacy::None,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("see the module docs at the top of crates/core/src/bin/totoro-sim.rs"); // det: allow(golden_out: interactive demo binary; its stdout is a human-facing summary, never golden-compared)
        return;
    }
    let nodes: usize = arg_or(&args, "nodes", 48);
    let apps: usize = arg_or(&args, "apps", 1);
    let dataset = arg(&args, "dataset").unwrap_or_else(|| "speech".into());
    let fanout: usize = arg_or(&args, "fanout", 16);
    let samples: usize = arg_or(&args, "samples", 40);
    let alpha: f64 = arg_or(&args, "alpha", 0.5);
    let rounds: u64 = arg_or(&args, "rounds", 60);
    let seed: u64 = arg_or(&args, "seed", 1);
    let churn: f64 = arg_or(&args, "churn", 0.0);
    let geo = args.iter().any(|a| a == "--geo");

    let spec = match dataset.as_str() {
        "femnist" => femnist_like(),
        "text" => text_classification_like(),
        _ => speech_commands_like(),
    };
    let default_target = match spec.name {
        "speech" => 0.53,
        "femnist" => 0.755,
        _ => 0.9,
    };
    let target: f64 = arg_or(&args, "target", default_target);

    // det: allow(golden_out: interactive demo binary; its stdout is a human-facing summary, never golden-compared)
    println!(
        "totoro-sim: {nodes} nodes, {apps} app(s), dataset {} ({} classes), fanout {fanout}, seed {seed}",
        spec.name, spec.classes
    );

    // Topology.
    let topology = if geo {
        let mut rng = sub_rng(seed, "geo");
        let placed = generate(&eua_regions_scaled(nodes), &mut rng);
        Topology::from_placements(
            &placed,
            LatencyModel::Geo {
                base_us: 500,
                per_km_us: 5.0,
            },
        )
    } else {
        Topology::uniform(nodes, 1_000, 5_000)
    };
    let n = topology.len();

    let mut deploy = TotoroDeployment::new(
        topology,
        seed,
        DhtConfig::with_fanout(fanout),
        ForestConfig {
            fanout_cap: fanout,
            ..ForestConfig::default()
        },
    );

    // Applications.
    let mut rng = sub_rng(seed, "tasks");
    let generator = TaskGenerator::new(spec, &mut rng);
    for a in 0..apps {
        let shards = generator.client_shards(n, samples, alpha, &mut rng);
        let mut cfg = FlAppConfig::new(
            &format!("{}-{a}", generator.spec.name),
            vec![generator.spec.dim, 48, generator.spec.classes],
            Arc::new(generator.test_set(300, &mut rng)),
        );
        cfg.salt = a as u64;
        cfg.seed = seed.wrapping_add(a as u64);
        cfg.target_accuracy = target;
        cfg.max_rounds = rounds;
        cfg.selection = parse_selection(&arg(&args, "selection").unwrap_or_default());
        cfg.aggregation = parse_aggregation(&arg(&args, "aggregation").unwrap_or_default());
        cfg.compression = parse_compression(&arg(&args, "compression").unwrap_or_default());
        cfg.privacy = parse_privacy(&arg(&args, "privacy").unwrap_or_default());
        if let Some(q) = arg(&args, "quorum").and_then(|v| v.parse::<f64>().ok()) {
            cfg.round_policy = RoundPolicy::SemiSynchronous { quorum: q };
        }
        deploy.submit_app(cfg, &(0..n).collect::<Vec<_>>(), shards);
    }

    // Optional mid-training churn.
    if churn > 0.0 {
        let mut crng = sub_rng(seed, "churn");
        let members: Vec<usize> = (0..n).collect();
        let schedule = ChurnSchedule::mass_failure(
            &members,
            churn,
            SimTime::from_micros(20 * 1_000_000),
            &mut crng,
        );
        // det: allow(golden_out: interactive demo binary; its stdout is a human-facing summary, never golden-compared)
        println!(
            "churn: killing {} nodes at t=20s",
            schedule.nodes_affected()
        );
        schedule.apply(deploy.sim_mut());
    }

    let finished = deploy.run(SimTime::from_micros(24 * 3_600 * 1_000_000));

    println!("\napp                  master  rounds  best acc  time-to-target"); // det: allow(golden_out: interactive demo binary; its stdout is a human-facing summary, never golden-compared)
    for a in 0..apps {
        let curve = deploy.curve(a);
        // det: allow(float: f64::max is exactly commutative and associative, so fold order cannot change the result)
        let best = curve.iter().map(|p| p.accuracy).fold(0.0, f64::max);
        let r = curve.last().map_or(0, |p| p.round);
        let master = deploy.master_of(a).map_or("-".into(), |m| m.to_string());
        let ttt = deploy
            .time_to_target(a)
            .map_or("-".into(), |t| format!("{t:.1}s"));
        // det: allow(golden_out: interactive demo binary; its stdout is a human-facing summary, never golden-compared)
        println!(
            "{:<20} {master:>6}  {r:>6}  {best:>8.3}  {ttt:>14}",
            deploy.config(a).name
        );
    }
    let traffic = deploy.sim().traffic();
    // det: allow(golden_out: interactive demo binary; its stdout is a human-facing summary, never golden-compared)
    println!(
        "\nsimulated time: {:.1}s | events: {} | mean payload sent/node: {:.1} KiB | all finished: {finished}",
        deploy.sim().now().as_secs_f64(),
        deploy.sim().events_processed(),
        traffic.mean_payload_sent() / 1024.0
    );
}
