//! High-level deployment driver: the entry point downstream users touch.
//!
//! A [`TotoroDeployment`] owns a simulated edge network whose nodes run the
//! full Totoro stack (DHT multi-ring → pub/sub forest → FL engine). Its
//! methods mirror the paper's Table 2 API: nodes `Join` at construction,
//! `submit_app` performs `CreateTree` + per-participant `Subscribe`, and
//! the engine drives `Broadcast` / `Aggregate` with the `onBroadcast` /
//! `onAggregate` / `onTimer` callbacks implemented by
//! [`crate::engine::FlEngine`].

use std::sync::Arc;

use totoro_dht::{spawn_overlay, DhtConfig, Id};
use totoro_ml::{AccuracyPoint, Dataset};
use totoro_pubsub::{Forest, ForestConfig, ForestNode};
use totoro_simnet::{NodeIdx, SimDuration, SimTime, Simulator, Topology};

use crate::config::FlAppConfig;
use crate::engine::FlEngine;

/// The full-stack node type of a deployment.
pub type TotoroNode = ForestNode<FlEngine>;

/// A running Totoro deployment.
pub struct TotoroDeployment {
    sim: Simulator<TotoroNode>,
    ids: Vec<Id>,
    configs: Vec<Arc<FlAppConfig>>,
}

impl TotoroDeployment {
    /// Boots `topology.len()` nodes into a converged overlay (`Join`).
    pub fn new(
        topology: Topology,
        seed: u64,
        dht_config: DhtConfig,
        forest_config: ForestConfig,
    ) -> Self {
        let (sim, ids) = spawn_overlay(topology, seed, dht_config, None, |i| {
            Forest::new(FlEngine::new(i), forest_config)
        });
        TotoroDeployment {
            sim,
            ids,
            configs: Vec::new(),
        }
    }

    /// Like [`TotoroDeployment::new`] with explicit node ids (multi-ring
    /// deployments compose ids from zone assignments via
    /// [`totoro_dht::ids_for_zones`]).
    pub fn with_ids(
        topology: Topology,
        seed: u64,
        dht_config: DhtConfig,
        forest_config: ForestConfig,
        ids: Vec<Id>,
    ) -> Self {
        let (sim, ids) = spawn_overlay(topology, seed, dht_config, Some(ids), |i| {
            Forest::new(FlEngine::new(i), forest_config)
        });
        TotoroDeployment {
            sim,
            ids,
            configs: Vec::new(),
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.sim.len()
    }

    /// Whether the deployment has no nodes.
    pub fn is_empty(&self) -> bool {
        self.sim.len() == 0
    }

    /// Node ids by address.
    pub fn ids(&self) -> &[Id] {
        &self.ids
    }

    /// Submits an application (`CreateTree` + `Subscribe` for every
    /// participant, with one shard per participant). Returns the app index.
    pub fn submit_app(
        &mut self,
        mut config: FlAppConfig,
        participants: &[NodeIdx],
        shards: Vec<Dataset>,
    ) -> usize {
        assert_eq!(participants.len(), shards.len());
        config.expected_participants = participants.len();
        config.participant_list = participants.to_vec();
        if config.privacy == totoro_ml::Privacy::SecureAggregation {
            // Pairwise masks only cancel under full synchronous
            // participation and additive (uncompressed) aggregation.
            assert_eq!(
                config.selection,
                crate::SelectionPolicy::All,
                "secure aggregation requires SelectionPolicy::All"
            );
            assert_eq!(
                config.compression,
                totoro_ml::Compression::None,
                "secure aggregation requires Compression::None"
            );
        }
        let config = Arc::new(config);
        let topic = config.app_id();
        // The app catalog is global metadata: every node learns the spec so
        // that any of them can serve as the app's master or aggregator.
        for node in 0..self.sim.len() {
            let cfg = Arc::clone(&config);
            self.sim.with_app(node, |n, _ctx| {
                n.upper.app.register_app(cfg);
            });
        }
        let app = self.configs.len();
        self.configs.push(Arc::clone(&config));
        for (&p, shard) in participants.iter().zip(shards) {
            self.sim.with_app(p, |n, ctx| {
                n.upper.app.install_shard(app, shard);
                n.with_api(ctx, |forest, dht| {
                    forest.with_forest_api(dht, |_fl, api| api.subscribe(topic));
                });
            });
        }
        app
    }

    /// Runs until all submitted apps reach their target (or round cap), or
    /// until `deadline`. Returns `true` when all apps finished.
    ///
    /// Executes in bounded simulated-time slices: overlay maintenance keeps
    /// the event queue non-empty forever, so completion must be polled
    /// between slices rather than waiting for the queue to drain.
    pub fn run(&mut self, deadline: SimTime) -> bool {
        const SLICE: SimDuration = SimDuration::from_secs(5);
        loop {
            let all_done =
                !self.configs.is_empty() && (0..self.configs.len()).all(|a| self.app_done(a));
            if all_done {
                return true;
            }
            if self.sim.now() >= deadline {
                return false;
            }
            let next = (self.sim.now() + SLICE).min(deadline);
            if self.sim.run_until(next) == 0 && self.sim.run_until(deadline) == 0 {
                // Queue fully drained (no maintenance configured).
                return (0..self.configs.len()).all(|a| self.app_done(a));
            }
        }
    }

    /// Whether app `a` finished at some master.
    pub fn app_done(&self, app: usize) -> bool {
        self.sim
            .apps()
            .any(|n| n.upper.app.masters.get(&app).is_some_and(|m| m.done))
    }

    /// The current master (root) of app `app`, if any. Only live nodes
    /// qualify — a crashed ex-master still holds `is_root` state but no
    /// longer serves the application.
    pub fn master_of(&self, app: usize) -> Option<NodeIdx> {
        let topic = self.configs.get(app)?.app_id();
        (0..self.sim.len()).find(|&i| {
            self.sim.alive(i)
                && self
                    .sim
                    .app(i)
                    .upper
                    .state
                    .membership(topic)
                    .is_some_and(|m| m.is_root)
        })
    }

    /// The time-to-accuracy curve recorded by app `app`'s master(s),
    /// concatenated in time order across master migrations.
    pub fn curve(&self, app: usize) -> Vec<AccuracyPoint> {
        let mut points: Vec<AccuracyPoint> = self
            .sim
            .apps()
            .filter_map(|n| n.upper.app.masters.get(&app))
            .flat_map(|m| m.curve.iter().copied())
            .collect();
        points.sort_by(|a, b| a.time_secs.total_cmp(&b.time_secs));
        points
    }

    /// Seconds of simulated time until app `app` first reached its target.
    pub fn time_to_target(&self, app: usize) -> Option<f64> {
        let target = self.configs.get(app)?.target_accuracy;
        totoro_ml::time_to_accuracy(&self.curve(app), target)
    }

    /// The registered config of app `app`.
    pub fn config(&self, app: usize) -> &Arc<FlAppConfig> {
        &self.configs[app]
    }

    /// Number of submitted applications.
    pub fn num_apps(&self) -> usize {
        self.configs.len()
    }

    /// Read access to the simulator (traffic/compute ledgers, node state).
    pub fn sim(&self) -> &Simulator<TotoroNode> {
        &self.sim
    }

    /// Mutable access to the simulator (churn injection, manual driving).
    pub fn sim_mut(&mut self) -> &mut Simulator<TotoroNode> {
        &mut self.sim
    }
}
