//! Full-stack Totoro tests: overlay → forest → FL engine.

use std::sync::Arc;

use totoro::{FlAppConfig, SelectionPolicy, TotoroDeployment};
use totoro_dht::DhtConfig;
use totoro_ml::{
    femnist_like, text_classification_like, AggregationRule, Compression, Privacy, TaskGenerator,
};
use totoro_pubsub::ForestConfig;
use totoro_simnet::{sub_rng, SimDuration, SimTime, Topology};

fn deployment(n: usize, seed: u64) -> TotoroDeployment {
    TotoroDeployment::new(
        Topology::uniform(n, 1_000, 5_000),
        seed,
        DhtConfig::default(),
        ForestConfig::default(),
    )
}

fn quick_config(name: &str, generator: &TaskGenerator, target: f64, seed: u64) -> FlAppConfig {
    let mut rng = sub_rng(seed, "test-set");
    let mut cfg = FlAppConfig::new(
        name,
        vec![generator.spec.dim, 32, generator.spec.classes],
        Arc::new(generator.test_set(200, &mut rng)),
    );
    cfg.target_accuracy = target;
    cfg.max_rounds = 40;
    cfg.lr = 0.15;
    cfg.seed = seed;
    cfg
}

#[test]
fn single_app_trains_to_target_through_the_tree() {
    let n = 24;
    let mut deploy = deployment(n, 1);
    let mut rng = sub_rng(1, "gen");
    let generator = TaskGenerator::new(text_classification_like(), &mut rng);
    let participants: Vec<usize> = (0..n).collect();
    let shards = generator.client_shards(n, 50, 0.5, &mut rng);
    let cfg = quick_config("quickstart", &generator, 0.8, 5);
    let app = deploy.submit_app(cfg, &participants, shards);

    let finished = deploy.run(SimTime::from_micros(7_200 * 1_000_000));
    assert!(finished, "training did not reach the target in time");
    let curve = deploy.curve(app);
    assert!(!curve.is_empty());
    let best = curve.iter().map(|p| p.accuracy).fold(0.0, f64::max);
    assert!(best >= 0.8, "best accuracy {best}");
    assert!(deploy.time_to_target(app).is_some());
    // There is exactly one master and it recorded the curve.
    let master = deploy.master_of(app).expect("a master exists");
    assert!(deploy
        .sim()
        .app(master)
        .upper
        .app
        .masters
        .get(&app)
        .is_some_and(|m| m.done));
}

#[test]
fn many_apps_train_concurrently_with_distinct_masters() {
    let n = 40;
    let num_apps = 6;
    let mut deploy = deployment(n, 2);
    let mut rng = sub_rng(2, "gen");
    let generator = TaskGenerator::new(text_classification_like(), &mut rng);
    let participants: Vec<usize> = (0..n).collect();
    for a in 0..num_apps {
        let shards = generator.client_shards(n, 40, 0.5, &mut rng);
        let mut cfg = quick_config(&format!("health-app-{a}"), &generator, 2.0, 10 + a as u64);
        cfg.salt = a as u64;
        cfg.max_rounds = 4; // Fixed-round run; target unreachable.
        deploy.submit_app(cfg, &participants, shards);
    }
    deploy.run(SimTime::from_micros(7_200 * 1_000_000));

    // All apps completed their rounds.
    for a in 0..num_apps {
        let curve = deploy.curve(a);
        assert_eq!(
            curve.last().map(|p| p.round),
            Some(4),
            "app {a} incomplete: {curve:?}"
        );
    }
    // Masters are spread: no node owns more than half the apps.
    let masters: Vec<usize> = (0..num_apps).filter_map(|a| deploy.master_of(a)).collect();
    assert_eq!(masters.len(), num_apps);
    let max_on_one = (0..n)
        .map(|i| masters.iter().filter(|&&m| m == i).count())
        .max()
        .unwrap();
    assert!(
        max_on_one <= num_apps / 2,
        "masters concentrated: {masters:?}"
    );
}

#[test]
fn selection_fraction_reduces_contributions() {
    let n = 30;
    let mut deploy = deployment(n, 3);
    let mut rng = sub_rng(3, "gen");
    let generator = TaskGenerator::new(text_classification_like(), &mut rng);
    let participants: Vec<usize> = (0..n).collect();
    let shards = generator.client_shards(n, 30, 0.5, &mut rng);
    let mut cfg = quick_config("selective", &generator, 2.0, 21);
    cfg.selection = SelectionPolicy::Fraction(0.4);
    cfg.max_rounds = 3;
    let app = deploy.submit_app(cfg, &participants, shards);
    deploy.run(SimTime::from_micros(3_600 * 1_000_000));

    let curve = deploy.curve(app);
    assert!(!curve.is_empty());
    let total_contributed: u64 = deploy
        .sim()
        .apps()
        .map(|node| node.upper.app.stats.updates_contributed)
        .sum();
    let total_models: u64 = deploy
        .sim()
        .apps()
        .map(|node| node.upper.app.stats.models_received)
        .sum();
    assert!(total_models > 0);
    let rate = total_contributed as f64 / total_models as f64;
    assert!(
        (0.15..=0.65).contains(&rate),
        "selection rate {rate} far from 0.4 ({total_contributed}/{total_models})"
    );
}

#[test]
fn fedprox_compression_and_privacy_compose() {
    let n = 20;
    let mut deploy = deployment(n, 4);
    let mut rng = sub_rng(4, "gen");
    let generator = TaskGenerator::new(femnist_like(), &mut rng);
    let participants: Vec<usize> = (0..n).collect();
    let shards = generator.client_shards(n, 40, 0.1, &mut rng);
    let mut cfg = quick_config("private", &generator, 2.0, 30);
    cfg.aggregation = AggregationRule::FedProx { mu: 0.05 };
    cfg.compression = Compression::Int8;
    cfg.privacy = Privacy::GaussianDp {
        clip: 50.0,
        sigma: 0.001,
    };
    cfg.max_rounds = 6;
    let app = deploy.submit_app(cfg, &participants, shards);
    deploy.run(SimTime::from_micros(7_200 * 1_000_000));

    let curve = deploy.curve(app);
    assert_eq!(curve.last().map(|p| p.round), Some(6));
    // Training still makes progress despite noise + quantized wire sizes.
    let best = curve.iter().map(|p| p.accuracy).fold(0.0, f64::max);
    assert!(best > 0.10, "no learning under DP+compression: {best}");
}

#[test]
fn master_failure_mid_training_promotes_replacement() {
    let n = 30;
    let mut deploy = TotoroDeployment::new(
        Topology::uniform(n, 1_000, 5_000),
        5,
        DhtConfig::default(),
        ForestConfig {
            tick: SimDuration::from_millis(500),
            ..ForestConfig::default()
        },
    );
    let mut rng = sub_rng(5, "gen");
    let generator = TaskGenerator::new(text_classification_like(), &mut rng);
    let participants: Vec<usize> = (0..n).collect();
    let shards = generator.client_shards(n, 30, 0.5, &mut rng);
    let mut cfg = quick_config("resilient", &generator, 2.0, 40);
    cfg.max_rounds = 500; // Effectively endless: the kill lands mid-training.
    cfg.round_pause = SimDuration::from_millis(500);
    cfg.round_timeout = SimDuration::from_secs(20);
    let app = deploy.submit_app(cfg, &participants, shards);

    // Let a few rounds run, then kill the master.
    deploy.run(SimTime::from_micros(30 * 1_000_000));
    let master = deploy.master_of(app).expect("master exists");
    let rounds_before = deploy.curve(app).len();
    assert!(rounds_before > 0, "no rounds before the failure");
    deploy
        .sim_mut()
        .schedule_down(master, SimTime::from_micros(31 * 1_000_000));
    deploy.run(SimTime::from_micros(180 * 1_000_000));

    let new_master = deploy.master_of(app);
    assert!(
        new_master.is_some_and(|m| m != master),
        "no replacement master was promoted"
    );
    // The replacement made progress: more curve points than before.
    let rounds_after = deploy.curve(app).len();
    assert!(
        rounds_after > rounds_before,
        "replacement master made no progress ({rounds_before} -> {rounds_after})"
    );
}

#[test]
fn traffic_is_spread_rather_than_hub_and_spoke() {
    let n = 30;
    let mut deploy = deployment(n, 6);
    let mut rng = sub_rng(6, "gen");
    let generator = TaskGenerator::new(text_classification_like(), &mut rng);
    let participants: Vec<usize> = (0..n).collect();
    for a in 0..4u64 {
        let shards = generator.client_shards(n, 30, 0.5, &mut rng);
        let mut cfg = quick_config(&format!("spread-{a}"), &generator, 2.0, 40 + a);
        cfg.salt = a;
        cfg.max_rounds = 3;
        deploy.submit_app(cfg, &participants, shards);
    }
    deploy.run(SimTime::from_micros(3_600 * 1_000_000));

    let sent: Vec<u64> = (0..n)
        .map(|i| deploy.sim().traffic().node(i).payload_sent)
        .collect();
    let max = *sent.iter().max().unwrap() as f64;
    let mean = sent.iter().sum::<u64>() as f64 / n as f64;
    // In a hub-and-spoke system the hub sends ~n× the mean; in Totoro the
    // hottest node stays within a small factor of the mean.
    assert!(
        max / mean < 8.0,
        "traffic skew too high: max {max}, mean {mean}"
    );
}

#[test]
fn virtual_nodes_let_rich_hardware_carry_more_load() {
    // §7.5: resource-rich physical nodes map to several logical P2P nodes
    // and therefore absorb proportionally more id space, hence more work.
    use totoro::{expand_by_cores, fold_to_physical};
    use totoro_simnet::{LatencyModel, NodeProfile};

    let physical_n = 16;
    let mut physical = Topology::uniform(physical_n, 1_000, 5_000);
    // Node 0 is a beefy gateway (8 cores), the rest are 2-core devices.
    physical.set_profile(
        0,
        NodeProfile {
            cores: 8,
            compute_speed: 4.0,
            ..NodeProfile::default()
        },
    );
    let mapping = expand_by_cores(
        &physical,
        LatencyModel::Uniform {
            min_us: 1_000,
            max_us: 5_000,
        },
    );
    assert_eq!(mapping.logical.len(), physical_n + 2); // 3 logical for node 0.

    let n = mapping.logical.len();
    let mut deploy = TotoroDeployment::new(
        mapping.logical.clone(),
        9,
        DhtConfig::default(),
        ForestConfig::default(),
    );
    let mut rng = sub_rng(9, "gen");
    let generator = TaskGenerator::new(text_classification_like(), &mut rng);
    for a in 0..4u64 {
        let shards = generator.client_shards(n, 30, 0.5, &mut rng);
        let mut cfg = quick_config(&format!("hetero-{a}"), &generator, 2.0, 50 + a);
        cfg.salt = a;
        cfg.max_rounds = 3;
        deploy.submit_app(cfg, &(0..n).collect::<Vec<_>>(), shards);
    }
    deploy.run(SimTime::from_micros(3_600 * 1_000_000));
    for a in 0..4 {
        assert_eq!(deploy.curve(a).last().map(|p| p.round), Some(3));
    }

    // Fold logical traffic back to physical hardware: the gateway, owning
    // 3x the id space, should carry more than the per-device average.
    let per_logical: Vec<u64> = (0..n)
        .map(|l| deploy.sim().traffic().node(l).payload_sent)
        .collect();
    let per_physical = fold_to_physical(&mapping, &per_logical, physical_n);
    let gateway = per_physical[0] as f64;
    let mean_rest = per_physical[1..].iter().sum::<u64>() as f64 / (physical_n - 1) as f64;
    assert!(
        gateway > 1.3 * mean_rest,
        "gateway {gateway:.0} should exceed device mean {mean_rest:.0}"
    );
}

#[test]
fn semi_synchronous_quorum_cuts_rounds_early() {
    use totoro::RoundPolicy;
    // A few stragglers with tiny compute speed slow every synchronous
    // round; the semi-synchronous quorum (60%) completes without them.
    let n = 24;
    let build_with = |policy: RoundPolicy, seed: u64| -> (f64, u64) {
        let mut topology = Topology::uniform(n, 1_000, 5_000);
        for straggler in 0..4 {
            topology.set_profile(
                straggler,
                totoro_simnet::NodeProfile {
                    // ~17s of training per round vs ~0.1s for the rest.
                    compute_speed: 1e-4,
                    ..totoro_simnet::NodeProfile::default()
                },
            );
        }
        let mut deploy = TotoroDeployment::new(
            topology,
            seed,
            DhtConfig::default(),
            ForestConfig {
                agg_timeout: SimDuration::from_secs(40),
                ..ForestConfig::default()
            },
        );
        let mut rng = sub_rng(seed, "gen");
        let generator = TaskGenerator::new(text_classification_like(), &mut rng);
        let shards = generator.client_shards(n, 60, 0.5, &mut rng);
        let mut cfg = quick_config("semisync", &generator, 2.0, 60 + seed);
        cfg.round_policy = policy;
        cfg.max_rounds = 5;
        let app = deploy.submit_app(cfg, &(0..n).collect::<Vec<_>>(), shards);
        deploy.run(SimTime::from_micros(7_200 * 1_000_000));
        let curve = deploy.curve(app);
        (
            curve.last().map_or(f64::MAX, |p| p.time_secs),
            curve.last().map_or(0, |p| p.round),
        )
    };

    let (sync_time, sync_rounds) = build_with(RoundPolicy::Synchronous, 7);
    let (semi_time, semi_rounds) = build_with(RoundPolicy::SemiSynchronous { quorum: 0.6 }, 7);
    assert_eq!(sync_rounds, 5);
    assert_eq!(semi_rounds, 5);
    assert!(
        semi_time < 0.7 * sync_time,
        "quorum did not accelerate rounds: semi {semi_time:.0}s vs sync {sync_time:.0}s"
    );
}

#[test]
fn loss_adaptive_selection_backs_off_as_clients_converge() {
    use totoro::SelectionPolicy;
    let n = 24;
    let mut deploy = deployment(n, 11);
    let mut rng = sub_rng(11, "gen");
    let generator = TaskGenerator::new(text_classification_like(), &mut rng);
    let shards = generator.client_shards(n, 50, 0.5, &mut rng);
    let mut cfg = quick_config("oortish", &generator, 2.0, 71);
    cfg.selection = SelectionPolicy::LossAdaptive { floor: 0.15 };
    cfg.max_rounds = 12;
    let app = deploy.submit_app(cfg, &(0..n).collect::<Vec<_>>(), shards);
    deploy.run(SimTime::from_micros(3_600 * 1_000_000));

    let curve = deploy.curve(app);
    assert_eq!(curve.last().map(|p| p.round), Some(12));
    // Early rounds: nearly everyone (high loss). Late rounds (task is easy,
    // loss collapses): participation approaches the floor.
    let master = deploy.master_of(app).unwrap();
    let agg = |r: u64| -> Option<u64> {
        deploy
            .sim()
            .app(master)
            .upper
            .state
            .agg_log
            .iter()
            .find(|e| e.round == r)
            .map(|e| e.count)
    };
    let early = agg(1).unwrap_or(0);
    let late = agg(12).unwrap_or(u64::MAX);
    assert!(early >= (n as u64 * 3) / 4, "early participation {early}");
    assert!(
        late <= early / 2,
        "late participation did not back off: {late} vs early {early}"
    );
}

#[test]
fn continuous_churn_during_training_still_converges() {
    // The §7.5 adaptivity scenario as a hard correctness test: random
    // outages keep hitting the overlay while an app trains; the engine
    // must still finish all rounds and learn.
    let n = 36;
    let mut deploy = TotoroDeployment::new(
        Topology::uniform(n, 1_000, 6_000),
        13,
        DhtConfig::default(),
        ForestConfig {
            tick: SimDuration::from_millis(500),
            agg_timeout: SimDuration::from_secs(10),
            ..ForestConfig::default()
        },
    );
    let mut rng = sub_rng(13, "gen");
    let generator = TaskGenerator::new(text_classification_like(), &mut rng);
    let shards = generator.client_shards(n, 40, 0.5, &mut rng);
    let mut cfg = quick_config("stormy", &generator, 2.0, 80); // Run all rounds.
    cfg.max_rounds = 40;
    cfg.round_pause = SimDuration::from_secs(5); // Rounds span the churn storm.
    cfg.round_timeout = SimDuration::from_secs(25);
    let app = deploy.submit_app(cfg, &(0..n).collect::<Vec<_>>(), shards);

    let members: Vec<usize> = (0..n).collect();
    let churn = totoro_simnet::ChurnSchedule::continuous(
        &members,
        SimTime::from_micros(5_000_000),
        SimTime::from_micros(400_000_000),
        SimDuration::from_secs(5),
        SimDuration::from_secs(8),
        &mut rng,
    );
    churn.apply(deploy.sim_mut());

    deploy.run(SimTime::from_micros(3_600 * 1_000_000));
    let curve = deploy.curve(app);
    let best = curve.iter().map(|p| p.accuracy).fold(0.0, f64::max);
    let rounds = curve.last().map_or(0, |p| p.round);
    assert!(
        rounds >= 35,
        "training stalled under churn: {rounds} rounds"
    );
    assert!(best > 0.6, "model failed to learn under churn: {best}");
}

#[test]
fn secure_aggregation_trains_correctly_and_hides_individual_updates() {
    use totoro_ml::Privacy;
    let n = 16;
    let mut deploy = deployment(n, 17);
    let mut rng = sub_rng(17, "gen");
    let generator = TaskGenerator::new(text_classification_like(), &mut rng);
    let shards = generator.client_shards(n, 50, 0.5, &mut rng);
    let mut cfg = quick_config("secagg", &generator, 0.85, 91);
    cfg.privacy = Privacy::SecureAggregation;
    cfg.max_rounds = 25;
    let app = deploy.submit_app(cfg, &(0..n).collect::<Vec<_>>(), shards);
    deploy.run(SimTime::from_micros(3_600 * 1_000_000));

    // Masks cancel in the full aggregate: the model still learns.
    let best = deploy
        .curve(app)
        .iter()
        .map(|p| p.accuracy)
        .fold(0.0, f64::max);
    assert!(best >= 0.85, "secure aggregation broke learning: {best}");
}

#[test]
fn secure_aggregation_discards_incomplete_rounds() {
    use totoro_ml::Privacy;
    let n = 12;
    let mut deploy = TotoroDeployment::new(
        Topology::uniform(n, 1_000, 5_000),
        18,
        DhtConfig::default(),
        ForestConfig {
            agg_timeout: SimDuration::from_secs(10),
            ..ForestConfig::default()
        },
    );
    let mut rng = sub_rng(18, "gen");
    let generator = TaskGenerator::new(text_classification_like(), &mut rng);
    let shards = generator.client_shards(n, 40, 0.5, &mut rng);
    let mut cfg = quick_config("secagg-drop", &generator, 2.0, 92);
    cfg.privacy = Privacy::SecureAggregation;
    cfg.max_rounds = 8;
    cfg.round_timeout = SimDuration::from_secs(30);
    let app = deploy.submit_app(cfg, &(0..n).collect::<Vec<_>>(), shards);

    // Kill a worker early: every subsequent round is incomplete, so the
    // model must stay at its (seeded) initial weights — applying a masked
    // partial sum would destroy it instead.
    deploy.run(SimTime::from_micros(3 * 1_000_000));
    let master = deploy.master_of(app).expect("master exists");
    let victim = (0..n).find(|&i| i != master).unwrap();
    deploy
        .sim_mut()
        .schedule_down(victim, SimTime::from_micros(3_100_000));
    deploy.run(SimTime::from_micros(1_800 * 1_000_000));

    let curve = deploy.curve(app);
    assert!(curve.len() >= 3, "rounds did not proceed: {}", curve.len());
    // Accuracy stays near the untrained baseline but NEVER collapses to a
    // masked-garbage model (which would train nothing and stay there too —
    // the stronger check is weight sanity at the master).
    let master_state = deploy
        .sim()
        .app(deploy.master_of(app).unwrap())
        .upper
        .app
        .masters
        .get(&app)
        .unwrap();
    let max_weight = master_state
        .model
        .to_weights()
        .iter()
        .map(|w| w.abs())
        .fold(0.0f32, f32::max);
    assert!(
        max_weight < 10.0,
        "masked noise leaked into the model: max |w| = {max_weight}"
    );
}
