//! `totoro-detlint`: CLI for the workspace determinism linter.
//!
//! ```text
//! totoro-detlint                 # lint the enclosing workspace, text diagnostics
//! totoro-detlint --json          # machine-readable report on stdout
//! totoro-detlint --list-allows   # audit view of every suppression + reason
//! totoro-detlint --root PATH     # lint a different tree (used by the fixture tests)
//! ```
//!
//! Exit status: 0 clean, 1 violations found, 2 usage/IO error.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use totoro_detlint::{diag, lint_root, workspace};

struct Cli {
    root: Option<PathBuf>,
    json: bool,
    list_allows: bool,
}

const USAGE: &str = "usage: totoro-detlint [--root PATH] [--json] [--list-allows]";

fn parse_cli(args: &[String]) -> Result<Cli, String> {
    let mut cli = Cli {
        root: None,
        json: false,
        list_allows: false,
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--json" => cli.json = true,
            "--list-allows" => cli.list_allows = true,
            "--root" => {
                i += 1;
                let path = args.get(i).ok_or("--root requires a path")?;
                cli.root = Some(PathBuf::from(path));
            }
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown flag {other:?}")),
        }
        i += 1;
    }
    Ok(cli)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match parse_cli(&args) {
        Ok(cli) => cli,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("error: {msg}");
            }
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    let root = match cli.root {
        Some(root) => root,
        None => {
            let cwd = std::env::current_dir().expect("cwd");
            match workspace::find_root(&cwd) {
                Some(root) => root,
                None => {
                    eprintln!("error: no enclosing Cargo workspace found (try --root PATH)");
                    return ExitCode::from(2);
                }
            }
        }
    };
    let report = match lint_root(&root) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("error: cannot lint {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    if cli.list_allows {
        print!("{}", diag::render_allows(&report.allows));
        return ExitCode::SUCCESS;
    }
    let stale = report.stale_allows();
    if cli.json {
        print!(
            "{}",
            diag::render_json(&report.findings, &stale, report.files_scanned)
        );
    } else {
        print!(
            "{}",
            diag::render_report(&report.findings, &stale, report.files_scanned)
        );
    }
    if report.findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
