//! A hand-rolled Rust surface lexer: masks out everything that is not
//! code, and harvests `// det: allow(...)` annotations on the way.
//!
//! The rule scanners in [`crate::rules`] work on the *masked* text — the
//! original source with every comment, string literal, char literal, and
//! raw-string body overwritten with spaces (newlines preserved, so
//! byte offsets, line numbers, and columns are identical to the input).
//! That is exactly the property the rules need: a `HashMap` inside a
//! doc comment or a `r#"raw string"#` must never trigger a diagnostic,
//! and a `println!` smuggled into a nested block comment must not hide
//! one. No `syn`, no proc-macro expansion: the lexer understands just
//! enough of Rust's lexical grammar (nested block comments, escape
//! sequences, raw strings with arbitrary `#` counts, byte strings,
//! lifetimes vs. char literals) to be exact about what is code.

/// One `// det: allow(class: reason)` annotation found in a line comment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Allow {
    /// 1-based line the comment sits on.
    pub line: u32,
    /// 1-based column of the `//` that opens the comment.
    pub col: u32,
    /// 1-based line this annotation suppresses: its own line for a
    /// trailing comment, the next line holding code for an own-line
    /// comment (resolved by [`lex`] after the scan).
    pub applies_to: u32,
    /// Allow class (`unordered`, `entropy`, `golden_out`).
    pub class: String,
    /// Mandatory human reason. Empty string if the author omitted it —
    /// the `bad-annotation` rule turns that into a diagnostic.
    pub reason: String,
}

/// Result of lexing one source file.
#[derive(Debug)]
pub struct Lexed {
    /// The source with non-code bytes blanked to spaces (newlines kept).
    pub masked: String,
    /// Every `det: allow` annotation, with suppression targets resolved.
    pub allows: Vec<Allow>,
}

/// The marker that introduces an annotation inside a line comment.
const MARKER: &str = "det: allow(";

fn is_ident_char(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_'
}

/// Lexes `src`, producing the code-only mask and the annotation list.
pub fn lex(src: &str) -> Lexed {
    let b = src.as_bytes();
    let mut masked = b.to_vec();
    let mut allows: Vec<Allow> = Vec::new();
    // (line, col, text) of every line comment, for annotation parsing.
    let mut line = 1u32;
    let mut col = 1u32;
    let mut i = 0usize;

    // Blanks masked[from..to], preserving line structure.
    let blank = |masked: &mut [u8], from: usize, to: usize| {
        for m in masked.iter_mut().take(to).skip(from) {
            if *m != b'\n' && *m != b'\r' {
                *m = b' ';
            }
        }
    };
    // Advances line/col bookkeeping over src[from..to].
    fn advance(b: &[u8], from: usize, to: usize, line: &mut u32, col: &mut u32) {
        for &c in b.iter().take(to).skip(from) {
            if c == b'\n' {
                *line += 1;
                *col = 1;
            } else {
                *col += 1;
            }
        }
    }

    while i < b.len() {
        let c = b[i];
        // Line comment (covers `//`, `///`, `//!`).
        if c == b'/' && i + 1 < b.len() && b[i + 1] == b'/' {
            let start = i;
            let (start_line, start_col) = (line, col);
            // Own-line if only whitespace precedes the `//` on this line.
            let line_start = src[..start].rfind('\n').map(|p| p + 1).unwrap_or(0);
            let own_line = src[line_start..start].chars().all(char::is_whitespace);
            while i < b.len() && b[i] != b'\n' {
                i += 1;
            }
            if let Some(mut a) = parse_allow(&src[start..i], start_line, start_col) {
                // `applies_to == 0` marks "next code line"; resolved below.
                a.applies_to = if own_line { 0 } else { start_line };
                allows.push(a);
            }
            blank(&mut masked, start, i);
            advance(b, start, i, &mut line, &mut col);
            continue;
        }
        // Block comment, possibly nested.
        if c == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
            let start = i;
            i += 2;
            let mut depth = 1usize;
            while i < b.len() && depth > 0 {
                if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                    depth += 1;
                    i += 2;
                } else if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                    depth -= 1;
                    i += 2;
                } else {
                    i += 1;
                }
            }
            blank(&mut masked, start, i);
            advance(b, start, i, &mut line, &mut col);
            continue;
        }
        // String literal (with escapes). Byte strings arrive here via the
        // identifier branch below, which recognizes `b"`/`r"`/`br"` heads.
        if c == b'"' {
            let start = i;
            i = skip_string(b, i);
            blank(&mut masked, start, i);
            advance(b, start, i, &mut line, &mut col);
            continue;
        }
        // `'x'` char literal vs `'a` lifetime. A quote opens a char
        // literal iff it closes within a couple of chars or starts an
        // escape; otherwise it is a lifetime and stays in the mask
        // (lifetimes are inert for every rule).
        if c == b'\'' {
            let is_char = match b.get(i + 1) {
                Some(b'\\') => true,
                Some(_) => b.get(i + 2) == Some(&b'\''),
                None => false,
            };
            if is_char {
                let start = i;
                i += 1; // opening quote
                if b.get(i) == Some(&b'\\') {
                    i += 2; // escape introducer + escaped char
                    while i < b.len() && b[i] != b'\'' {
                        i += 1; // e.g. \u{1F600}
                    }
                } else {
                    i += 1;
                }
                i = (i + 1).min(b.len()); // closing quote
                blank(&mut masked, start, i);
                advance(b, start, i, &mut line, &mut col);
            } else {
                i += 1;
                col += 1;
            }
            continue;
        }
        // Identifier — may be a raw/byte string prefix.
        if is_ident_char(c) && !c.is_ascii_digit() {
            let start = i;
            while i < b.len() && is_ident_char(b[i]) {
                i += 1;
            }
            let ident = &src[start..i];
            let raw = matches!(ident, "r" | "br");
            let stringy = raw || matches!(ident, "b" | "c" | "cr");
            if stringy && i < b.len() && (b[i] == b'"' || (raw && b[i] == b'#')) {
                // Raw string: r"..." / r#"..."# / br##"..."##. The body
                // ends at `"` followed by the same number of `#`.
                if ident.contains('r') {
                    let mut hashes = 0usize;
                    while i < b.len() && b[i] == b'#' {
                        hashes += 1;
                        i += 1;
                    }
                    i += 1; // opening quote
                    'raw: while i < b.len() {
                        if b[i] == b'"' {
                            let mut k = 0usize;
                            while k < hashes && b.get(i + 1 + k) == Some(&b'#') {
                                k += 1;
                            }
                            if k == hashes {
                                i += 1 + hashes;
                                break 'raw;
                            }
                        }
                        i += 1;
                    }
                } else {
                    i = skip_string(b, i);
                }
                blank(&mut masked, start, i);
            }
            advance(b, start, i, &mut line, &mut col);
            continue;
        }
        if c == b'\n' {
            line += 1;
            col = 1;
        } else {
            col += 1;
        }
        i += 1;
    }

    // Resolve own-line annotations to the next line that holds code.
    let masked = String::from_utf8(masked).expect("mask preserves UTF-8: only ASCII replaced");
    let code_lines: Vec<&str> = masked.lines().collect();
    for a in &mut allows {
        if a.applies_to == 0 {
            let mut target = a.line + 1;
            while (target as usize) <= code_lines.len()
                && code_lines[target as usize - 1].trim().is_empty()
            {
                target += 1;
            }
            a.applies_to = target;
        }
    }
    Lexed { masked, allows }
}

/// Skips a `"`-delimited (byte) string starting at the opening quote;
/// returns the index one past the closing quote.
fn skip_string(b: &[u8], mut i: usize) -> usize {
    i += 1; // opening quote
    while i < b.len() {
        match b[i] {
            b'\\' => i += 2,
            b'"' => return i + 1,
            _ => i += 1,
        }
    }
    i
}

/// Parses `det: allow(class: reason)` out of a line comment's text.
///
/// The annotation must be the comment's *content* — `//` (or `///`,
/// `//!`) followed only by whitespace and then the marker. Prose that
/// merely mentions the grammar (docs, this linter's own sources) never
/// registers as a suppression.
fn parse_allow(comment: &str, line: u32, col: u32) -> Option<Allow> {
    let content = comment
        .trim_start_matches('/')
        .trim_start_matches('!')
        .trim_start();
    if !content.starts_with(MARKER) {
        return None;
    }
    let rest = &content[MARKER.len()..];
    let close = rest.rfind(')').unwrap_or(rest.len());
    let inner = &rest[..close];
    let (class, reason) = match inner.find(':') {
        Some(p) => (inner[..p].trim(), inner[p + 1..].trim()),
        None => (inner.trim(), ""),
    };
    Some(Allow {
        line,
        col,
        applies_to: line,
        class: class.to_string(),
        reason: reason.to_string(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn masked(src: &str) -> String {
        lex(src).masked
    }

    #[test]
    fn line_comments_are_blanked() {
        let m = masked("let x = 1; // HashMap here\nlet y = 2;\n");
        assert!(!m.contains("HashMap"));
        assert!(m.contains("let x = 1;"));
        assert!(m.contains("let y = 2;"));
    }

    #[test]
    fn nested_block_comments_are_blanked_to_the_outer_close() {
        let m = masked("a /* outer /* inner */ still comment HashMap */ b\n");
        assert!(!m.contains("HashMap"));
        assert!(!m.contains("still"));
        assert!(m.starts_with("a "));
        assert!(m.trim_end().ends_with('b'));
    }

    #[test]
    fn strings_are_blanked_but_code_is_kept() {
        let m = masked(r#"call("HashMap::new()"); let m = HashMap::new();"#);
        let first = m.find("HashMap").expect("code occurrence survives");
        assert!(m[first..].starts_with("HashMap::new()"));
        assert_eq!(m.matches("HashMap").count(), 1);
    }

    #[test]
    fn escaped_quotes_do_not_end_strings() {
        let m = masked(r#"let s = "a \" HashMap \" b"; let t = 1;"#);
        assert!(!m.contains("HashMap"));
        assert!(m.contains("let t = 1;"));
    }

    #[test]
    fn raw_strings_with_hashes_are_blanked() {
        let src = "let s = r#\"contains HashMap and \"quotes\" too\"#; let u = 9;\n";
        let m = masked(src);
        assert!(!m.contains("HashMap"));
        assert!(m.contains("let u = 9;"));
    }

    #[test]
    fn raw_strings_with_two_hashes_and_byte_strings() {
        let m = masked("let s = br##\"HashMap \"# not the end\"##; let v = 3;\n");
        assert!(!m.contains("HashMap"));
        assert!(m.contains("let v = 3;"));
        let m = masked("let s = b\"HashMap\"; let w = 4;\n");
        assert!(!m.contains("HashMap"));
        assert!(m.contains("let w = 4;"));
    }

    #[test]
    fn identifier_ending_in_r_is_not_a_raw_string_head() {
        // `for` ends in `r`; a naive prefix check would eat the string
        // opener as a raw string and derail the whole mask.
        let m = masked("for x in var { y(\"HashMap\"); }\n");
        assert!(!m.contains("HashMap"));
        assert!(m.contains("for x in var"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let m = masked("fn f<'a>(x: &'a str) -> &'a str { x }\n");
        assert!(m.contains("fn f<'a>(x: &'a str)"));
        let m = masked("let c = 'x'; let nl = '\\n'; let u = '\\u{1F600}'; done();\n");
        assert!(!m.contains('x'));
        assert!(m.contains("done();"));
    }

    #[test]
    fn multiline_strings_preserve_line_structure() {
        let src = "let s = \"line one\nline two HashMap\";\nlet z = 1;\n";
        let m = masked(src);
        assert_eq!(m.lines().count(), src.lines().count());
        assert!(!m.contains("HashMap"));
        assert!(m.contains("let z = 1;"));
    }

    #[test]
    fn trailing_allow_applies_to_its_own_line() {
        let lexed = lex("let m = x(); // det: allow(unordered: key-only)\n");
        assert_eq!(lexed.allows.len(), 1);
        let a = &lexed.allows[0];
        assert_eq!((a.line, a.applies_to), (1, 1));
        assert_eq!(a.class, "unordered");
        assert_eq!(a.reason, "key-only");
    }

    #[test]
    fn own_line_allow_applies_to_next_code_line() {
        let src = "// det: allow(entropy: wall-clock)\n\nlet t = now();\n";
        let lexed = lex(src);
        assert_eq!(lexed.allows.len(), 1);
        assert_eq!(lexed.allows[0].applies_to, 3);
    }

    #[test]
    fn own_line_allow_skips_interleaved_comment_lines() {
        let src = "// det: allow(unordered: keyed)\n// explains more\nlet m = f();\n";
        let lexed = lex(src);
        assert_eq!(lexed.allows[0].applies_to, 3);
    }

    #[test]
    fn allow_with_missing_reason_is_preserved_for_bad_annotation_rule() {
        let lexed = lex("x(); // det: allow(unordered)\ny(); // det: allow(entropy:   )\n");
        assert_eq!(lexed.allows.len(), 2);
        assert_eq!(lexed.allows[0].reason, "");
        assert_eq!(lexed.allows[1].reason, "");
    }

    #[test]
    fn allow_marker_inside_string_is_not_an_annotation() {
        let lexed = lex("let s = \"// det: allow(unordered: nope)\";\n");
        assert!(lexed.allows.is_empty());
    }

    #[test]
    fn columns_and_lines_survive_masking() {
        let src = "/* c */ let a = 1;\nlet b = HashMap::new();\n";
        let lexed = lex(src);
        let pos = lexed.masked.find("HashMap").unwrap();
        let line = lexed.masked[..pos].matches('\n').count() + 1;
        assert_eq!(line, 2);
        // Byte length is unchanged, so offsets map 1:1 onto the source.
        assert_eq!(lexed.masked.len(), src.len());
    }
}
