//! # totoro-detlint
//!
//! A from-scratch static determinism linter for the Totoro workspace
//! (DESIGN.md §11). Every artifact the benchmark harness regenerates
//! rests on a byte-identical-output contract across `--jobs`, seeds, and
//! trace sinks; this crate enforces the coding rules behind that
//! contract *statically*, before a golden file ever diverges:
//!
//! * **DET001 `unordered-collections`** — `HashMap`/`HashSet`/
//!   `RandomState` in protocol crates needs `// det: allow(unordered:
//!   <reason>)` asserting its iteration order never reaches protocol
//!   decisions, RNG draws, or report output.
//! * **DET002 `ambient-entropy`** — `Instant::now`, `SystemTime`,
//!   `thread_rng`, `rand::random`, `env::var` are forbidden in
//!   sim/protocol/bench crates (simulated time and seeded streams only).
//! * **DET003 `golden-surface`** — `println!`/`print!`/`eprintln!`/
//!   `eprint!`/`dbg!` are forbidden outside `crates/bench`'s report and
//!   logging modules: stdout is the golden surface, stderr goes through
//!   the leveled logger.
//! * **DET004 `unsafe-forbid`** — every crate root keeps
//!   `#![forbid(unsafe_code)]`.
//! * **DET005 `bad-annotation`** — suppressions must name a known class
//!   and carry a written reason.
//! * **DET006 `thread-primitives`** — `thread::spawn`/`thread::scope`,
//!   `Mutex`, and `mpsc` are forbidden in protocol crates outside the
//!   sanctioned shard runner (`crates/simnet/src/shard.rs`): ad-hoc
//!   threading makes event order scheduler-dependent.
//!
//! Built on a hand-rolled lexer ([`lexer`]) that masks comments and
//! string literals exactly (nested block comments, raw strings, byte
//! strings, char-vs-lifetime quotes), so rules match code and only code.
//! No `syn`, no registry dependencies: the linter runs on a tree whose
//! build is broken and can never perturb what it checks.

#![forbid(unsafe_code)]

pub mod diag;
pub mod lexer;
pub mod rules;
pub mod workspace;

use std::io;
use std::path::Path;

use lexer::Allow;
use rules::Finding;

/// Result of linting a workspace tree.
#[derive(Debug)]
pub struct LintReport {
    /// All diagnostics, sorted by `(file, line, col, rule)`.
    pub findings: Vec<Finding>,
    /// Every `det: allow` annotation seen, as `(file, allow)` pairs.
    pub allows: Vec<(String, Allow)>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

/// Lints every workspace `.rs` source under `root`.
pub fn lint_root(root: &Path) -> io::Result<LintReport> {
    let files = workspace::discover(root)?;
    let mut findings = Vec::new();
    let mut allows = Vec::new();
    for sf in &files {
        let src = std::fs::read_to_string(root.join(&sf.rel))?;
        let lexed = lexer::lex(&src);
        rules::scan_file(sf, &lexed, &mut findings);
        for a in lexed.allows {
            allows.push((sf.rel.clone(), a));
        }
    }
    findings.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.col, a.rule).cmp(&(b.file.as_str(), b.line, b.col, b.rule))
    });
    allows.sort_by(|a, b| (a.0.as_str(), a.1.line).cmp(&(b.0.as_str(), b.1.line)));
    Ok(LintReport {
        findings,
        allows,
        files_scanned: files.len(),
    })
}
