//! # totoro-detlint
//!
//! A from-scratch static determinism linter for the Totoro workspace
//! (DESIGN.md §11, §16). Every artifact the benchmark harness
//! regenerates rests on a byte-identical-output contract across
//! `--jobs`, `--shards`, seeds, and trace sinks; this crate enforces the
//! coding rules behind that contract *statically*, before a golden file
//! ever diverges:
//!
//! * **DET001 `unordered-collections`** — `HashMap`/`HashSet`/
//!   `RandomState` in protocol crates needs `// det: allow(unordered:
//!   <reason>)` asserting its iteration order never reaches protocol
//!   decisions, RNG draws, or report output.
//! * **DET002 `ambient-entropy`** — `Instant::now`, `SystemTime`,
//!   `thread_rng`, `rand::random`, `env::var` are forbidden in
//!   sim/protocol/bench crates (simulated time and seeded streams only).
//! * **DET003 `golden-surface`** — `println!`/`print!`/`eprintln!`/
//!   `eprint!`/`dbg!` are forbidden outside `crates/bench`'s report and
//!   logging modules: stdout is the golden surface, stderr goes through
//!   the leveled logger.
//! * **DET004 `unsafe-forbid`** — every crate root keeps
//!   `#![forbid(unsafe_code)]`.
//! * **DET005 `bad-annotation`** — suppressions must name a known class
//!   and carry a written reason.
//! * **DET006 `thread-primitives`** — `thread::spawn`/`thread::scope`,
//!   `Mutex`, and `mpsc` are forbidden in protocol crates (and in
//!   detlint itself) outside the sanctioned shard runner
//!   (`crates/simnet/src/shard.rs`): ad-hoc threading makes event order
//!   scheduler-dependent.
//! * **DET007 `atomic-ordering`** — every atomic op names an explicit
//!   memory `Ordering`, and `Ordering::Relaxed` carries a written
//!   `det: allow(ordering: …)` proof.
//! * **DET008 `lock-discipline`** — `.lock()` outside the shard runner
//!   is a violation; inside it, acquisitions must follow the canonical
//!   mailbox order and guard scopes must never nest.
//! * **DET009 `float-determinism`** — order-sensitive f32/f64
//!   reductions in protocol crates must live in the canonical-order
//!   helpers (`crates/simnet/src/numeric.rs`) or carry a commutativity
//!   proof.
//! * **DET010 `time-arithmetic`** — unchecked `+`/`-` on raw simulated
//!   timestamps outside `crates/simnet/src/time.rs`.
//!
//! Built on a hand-rolled lexer ([`lexer`]) that masks comments and
//! string literals exactly (nested block comments, raw strings, byte
//! strings, char-vs-lifetime quotes), so rules match code and only code.
//! The DET007–DET010 pack additionally consults a lightweight item
//! tracker ([`items`]) over the masked text: enclosing fn/impl/mod,
//! inline `#[cfg(test)]` spans, and `use ... as` aliases. No `syn`, no
//! registry dependencies: the linter runs on a tree whose build is
//! broken and can never perturb what it checks.

#![forbid(unsafe_code)]

pub mod diag;
pub mod items;
pub mod lexer;
pub mod rules;
pub mod workspace;

use std::io;
use std::path::Path;

use lexer::Allow;
use rules::Finding;

/// One `det: allow` annotation seen in the tree, with whether it
/// actually suppressed a finding.
#[derive(Debug)]
pub struct AllowRecord {
    /// Workspace-relative path with `/` separators.
    pub file: String,
    pub allow: Allow,
    /// Whether this annotation suppressed at least one finding.
    pub used: bool,
}

impl AllowRecord {
    /// A stale suppression: well-formed (known class, written reason)
    /// but suppressing nothing. Malformed allows are DET005 violations,
    /// not stale warnings.
    pub fn stale(&self) -> bool {
        !self.used
            && !self.allow.reason.is_empty()
            && rules::ALLOW_CLASSES.contains(&self.allow.class.as_str())
    }
}

/// Result of linting a workspace tree.
#[derive(Debug)]
pub struct LintReport {
    /// All diagnostics, sorted by `(file, line, col, rule)`.
    pub findings: Vec<Finding>,
    /// Every `det: allow` annotation seen, sorted by `(file, line)`.
    pub allows: Vec<AllowRecord>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

impl LintReport {
    /// The stale suppressions (exit-0 warnings).
    pub fn stale_allows(&self) -> Vec<&AllowRecord> {
        self.allows.iter().filter(|r| r.stale()).collect()
    }
}

/// Per-file scan output, produced by the worker threads.
struct FileResult {
    findings: Vec<Finding>,
    allows: Vec<AllowRecord>,
}

fn scan_one(root: &Path, sf: &workspace::SourceFile) -> io::Result<FileResult> {
    let src = std::fs::read_to_string(root.join(&sf.rel))?;
    let lexed = lexer::lex(&src);
    let mut findings = Vec::new();
    let used = rules::scan_file(sf, &lexed, &mut findings);
    let allows = lexed
        .allows
        .into_iter()
        .zip(used)
        .map(|(allow, used)| AllowRecord {
            file: sf.rel.clone(),
            allow,
            used,
        })
        .collect();
    Ok(FileResult { findings, allows })
}

/// Lints every workspace `.rs` source under `root`.
///
/// Files are scanned by a pool of scoped worker threads (the tree is
/// 140+ files and the scan is pure per-file work), but the output is
/// byte-identical to a sequential scan: each worker owns a contiguous
/// chunk of the path-sorted file list, chunk results are stitched back
/// in order, and the final sort keys contain no scheduling artifact.
pub fn lint_root(root: &Path) -> io::Result<LintReport> {
    let files = workspace::discover(root)?;
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .clamp(1, 8);
    let chunk = files.len().div_ceil(threads).max(1);
    // det: allow(parallel: per-file scans share nothing; results are stitched in path order)
    let per_file: Vec<io::Result<Vec<FileResult>>> = std::thread::scope(|scope| {
        let handles: Vec<_> = files
            .chunks(chunk)
            .map(|batch| scope.spawn(move || batch.iter().map(|sf| scan_one(root, sf)).collect()))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("detlint scan worker panicked"))
            .collect()
    });
    let mut findings = Vec::new();
    let mut allows = Vec::new();
    for batch in per_file {
        for fr in batch? {
            findings.extend(fr.findings);
            allows.extend(fr.allows);
        }
    }
    findings.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.col, a.rule).cmp(&(b.file.as_str(), b.line, b.col, b.rule))
    });
    allows.sort_by(|a, b| (a.file.as_str(), a.allow.line).cmp(&(b.file.as_str(), b.allow.line)));
    Ok(LintReport {
        findings,
        allows,
        files_scanned: files.len(),
    })
}
