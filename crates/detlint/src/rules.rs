//! The determinism rule set (DESIGN.md §11).
//!
//! Each rule scans the *masked* text produced by [`crate::lexer`] — so
//! comments and string literals can never trigger or hide a finding —
//! and reports rustc-style `file:line:col` diagnostics. Findings are
//! suppressible per line with `// det: allow(<class>: <reason>)`, except
//! `unsafe-forbid` and `bad-annotation`, which guard the suppression
//! mechanism itself.

use crate::lexer::{Allow, Lexed};
use crate::workspace::{FileKind, SourceFile};

/// Crates whose iteration order, RNG draws, and protocol decisions feed
/// golden output: any unordered collection there needs a written proof.
pub const PROTOCOL_CRATES: &[&str] = &[
    "simnet",
    "dht",
    "pubsub",
    "core",
    "baselines",
    "bandit",
    "ml",
    "mc",
];

/// Crates where ambient entropy (wall clocks, OS RNG, environment) is
/// forbidden: the protocol crates plus the harness that renders goldens.
pub const ENTROPY_CRATES: &[&str] = &[
    "simnet",
    "dht",
    "pubsub",
    "core",
    "baselines",
    "bandit",
    "ml",
    "mc",
    "bench",
];

/// The only modules allowed to write to stdout/stderr directly: stdout is
/// the golden surface (report emission) and stderr goes through the
/// leveled logger. Everything else must route through these.
pub const GOLDEN_ALLOWED_FILES: &[&str] =
    &["crates/bench/src/report.rs", "crates/bench/src/logging.rs"];

/// The only protocol-crate modules allowed to use thread primitives: the
/// conservative shard runner, whose barrier/mailbox protocol carries a
/// written determinism argument (DESIGN.md §13). Ad-hoc threads, locks,
/// or channels anywhere else in a protocol crate make event order depend
/// on the scheduler.
pub const SHARD_RUNNER_FILES: &[&str] = &["crates/simnet/src/shard.rs"];

/// Stable rule identifiers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RuleId {
    /// DET001: unordered collection in a protocol crate without an allow.
    UnorderedCollections,
    /// DET002: ambient entropy (wall clock, OS RNG, env) in sim crates.
    AmbientEntropy,
    /// DET003: direct stdout/stderr writes outside report/logging.
    GoldenSurface,
    /// DET004: crate root missing `#![forbid(unsafe_code)]`.
    UnsafeForbid,
    /// DET005: malformed `det: allow` (unknown class or missing reason).
    BadAnnotation,
    /// DET006: raw thread primitives in a protocol crate outside the
    /// sanctioned shard-runner module.
    ThreadPrimitives,
}

impl RuleId {
    /// `DET00x` code used in diagnostics and the JSON report.
    pub fn code(self) -> &'static str {
        match self {
            RuleId::UnorderedCollections => "DET001",
            RuleId::AmbientEntropy => "DET002",
            RuleId::GoldenSurface => "DET003",
            RuleId::UnsafeForbid => "DET004",
            RuleId::BadAnnotation => "DET005",
            RuleId::ThreadPrimitives => "DET006",
        }
    }

    /// Human rule name.
    pub fn name(self) -> &'static str {
        match self {
            RuleId::UnorderedCollections => "unordered-collections",
            RuleId::AmbientEntropy => "ambient-entropy",
            RuleId::GoldenSurface => "golden-surface",
            RuleId::UnsafeForbid => "unsafe-forbid",
            RuleId::BadAnnotation => "bad-annotation",
            RuleId::ThreadPrimitives => "thread-primitives",
        }
    }

    /// The `det: allow(<class>: ...)` class that suppresses this rule,
    /// if it is suppressible at all.
    pub fn allow_class(self) -> Option<&'static str> {
        match self {
            RuleId::UnorderedCollections => Some("unordered"),
            RuleId::AmbientEntropy => Some("entropy"),
            RuleId::GoldenSurface => Some("golden_out"),
            RuleId::ThreadPrimitives => Some("parallel"),
            RuleId::UnsafeForbid | RuleId::BadAnnotation => None,
        }
    }
}

/// Every valid annotation class (for `bad-annotation` validation).
pub const ALLOW_CLASSES: &[&str] = &["unordered", "entropy", "golden_out", "parallel"];

/// One diagnostic.
#[derive(Debug, Clone)]
pub struct Finding {
    pub rule: RuleId,
    /// Workspace-relative path with `/` separators.
    pub file: String,
    /// 1-based position of the offending token.
    pub line: u32,
    pub col: u32,
    /// The matched token (empty for file-level findings).
    pub token: String,
    pub message: String,
}

/// Tokens DET001 hunts for: unordered std collections and the hasher
/// that seeds them. Matched as whole identifiers in code.
const UNORDERED_TOKENS: &[&str] = &["HashMap", "HashSet", "RandomState"];

/// Identifier paths DET002 hunts for. Multi-segment patterns match the
/// exact `a::b` sequence (whitespace-tolerant); the single-segment ones
/// match a bare identifier.
const ENTROPY_PATTERNS: &[&[&str]] = &[
    &["Instant", "now"],
    &["SystemTime"],
    &["thread_rng"],
    &["rand", "random"],
    &["env", "var"],
];

/// Macros DET003 forbids outside the allowed modules. `eprint` before
/// `print` so the longest name wins nothing — matches are whole-ident.
const GOLDEN_MACROS: &[&str] = &["println", "print", "eprintln", "eprint", "dbg"];

/// Identifier paths DET006 hunts for: spawning threads and the sync
/// primitives that make event order scheduler-dependent. `Mutex` and
/// `mpsc` are matched bare so both `std::sync::Mutex` and a `use`d name
/// trip the rule.
const THREAD_PATTERNS: &[&[&str]] = &[
    &["thread", "spawn"],
    &["thread", "scope"],
    &["Mutex"],
    &["mpsc"],
];

/// Runs every applicable rule over one lexed file.
pub fn scan_file(sf: &SourceFile, lexed: &Lexed, findings: &mut Vec<Finding>) {
    let allows = &lexed.allows;
    validate_allows(sf, allows, findings);

    // DET001/DET002/DET003 look at hand-written code only: `src/` files.
    // Test and bench code asserts over the protocol, it does not produce
    // protocol decisions or golden bytes.
    if sf.kind == FileKind::Src {
        if in_crates(&sf.crate_name, PROTOCOL_CRATES) {
            scan_unordered(sf, lexed, findings);
            if !SHARD_RUNNER_FILES.contains(&sf.rel.as_str()) {
                scan_thread_primitives(sf, lexed, findings);
            }
        }
        if in_crates(&sf.crate_name, ENTROPY_CRATES) {
            scan_entropy(sf, lexed, findings);
        }
        if in_crates(&sf.crate_name, ENTROPY_CRATES)
            && !GOLDEN_ALLOWED_FILES.contains(&sf.rel.as_str())
        {
            scan_golden_surface(sf, lexed, findings);
        }
    }

    if sf.is_crate_root {
        scan_unsafe_forbid(sf, lexed, findings);
    }
}

fn in_crates(name: &str, list: &[&str]) -> bool {
    list.contains(&name)
}

fn suppressed(allows: &[Allow], rule: RuleId, line: u32) -> bool {
    let Some(class) = rule.allow_class() else {
        return false;
    };
    allows
        .iter()
        .any(|a| a.applies_to == line && a.class == class && !a.reason.is_empty())
}

fn push(allows: &[Allow], findings: &mut Vec<Finding>, finding: Finding) {
    if !suppressed(allows, finding.rule, finding.line) {
        findings.push(finding);
    }
}

/// DET005: every annotation must name a known class and carry a reason.
fn validate_allows(sf: &SourceFile, allows: &[Allow], findings: &mut Vec<Finding>) {
    for a in allows {
        if !ALLOW_CLASSES.contains(&a.class.as_str()) {
            findings.push(Finding {
                rule: RuleId::BadAnnotation,
                file: sf.rel.clone(),
                line: a.line,
                col: a.col,
                token: a.class.clone(),
                message: format!(
                    "unknown det: allow class `{}` (expected one of: {})",
                    a.class,
                    ALLOW_CLASSES.join(", ")
                ),
            });
        } else if a.reason.is_empty() {
            findings.push(Finding {
                rule: RuleId::BadAnnotation,
                file: sf.rel.clone(),
                line: a.line,
                col: a.col,
                token: a.class.clone(),
                message: format!(
                    "det: allow({}: ...) requires a written reason — suppressions without \
                     justification defeat the audit trail",
                    a.class
                ),
            });
        }
    }
}

/// DET001: unordered collections in protocol crates.
fn scan_unordered(sf: &SourceFile, lexed: &Lexed, findings: &mut Vec<Finding>) {
    for tok in UNORDERED_TOKENS {
        for (line, col) in find_ident(&lexed.masked, tok) {
            push(
                &lexed.allows,
                findings,
                Finding {
                    rule: RuleId::UnorderedCollections,
                    file: sf.rel.clone(),
                    line,
                    col,
                    token: tok.to_string(),
                    message: format!(
                        "`{tok}` in a protocol crate: iteration order is hash-seed dependent; \
                         convert to an ordered collection or add \
                         `// det: allow(unordered: <why order never escapes>)`"
                    ),
                },
            );
        }
    }
}

/// DET002: ambient entropy sources in sim/protocol/bench crates.
fn scan_entropy(sf: &SourceFile, lexed: &Lexed, findings: &mut Vec<Finding>) {
    for pat in ENTROPY_PATTERNS {
        for (line, col) in find_path(&lexed.masked, pat) {
            let shown = pat.join("::");
            push(
                &lexed.allows,
                findings,
                Finding {
                    rule: RuleId::AmbientEntropy,
                    file: sf.rel.clone(),
                    line,
                    col,
                    token: shown.clone(),
                    message: format!(
                        "`{shown}` is ambient entropy: simulated time and seeded RNG streams \
                         are the only randomness allowed here; add \
                         `// det: allow(entropy: <why this cannot reach golden output>)` if the \
                         value is provably outside the deterministic surface"
                    ),
                },
            );
        }
    }
}

/// DET003: direct stdout/stderr writes outside report/logging.
fn scan_golden_surface(sf: &SourceFile, lexed: &Lexed, findings: &mut Vec<Finding>) {
    for mac in GOLDEN_MACROS {
        for (line, col) in find_macro(&lexed.masked, mac) {
            push(
                &lexed.allows,
                findings,
                Finding {
                    rule: RuleId::GoldenSurface,
                    file: sf.rel.clone(),
                    line,
                    col,
                    token: mac.to_string(),
                    message: format!(
                        "`{mac}!` writes directly to the process streams: stdout is the golden \
                         surface (route through totoro_bench::report) and stderr goes through \
                         totoro_bench::logging; or add \
                         `// det: allow(golden_out: <why this stream is not a golden surface>)`"
                    ),
                },
            );
        }
    }
}

/// DET006: thread primitives outside the sanctioned shard runner.
fn scan_thread_primitives(sf: &SourceFile, lexed: &Lexed, findings: &mut Vec<Finding>) {
    for pat in THREAD_PATTERNS {
        for (line, col) in find_path(&lexed.masked, pat) {
            let shown = pat.join("::");
            push(
                &lexed.allows,
                findings,
                Finding {
                    rule: RuleId::ThreadPrimitives,
                    file: sf.rel.clone(),
                    line,
                    col,
                    token: shown.clone(),
                    message: format!(
                        "`{shown}` in a protocol crate: threads, locks, and channels make \
                         event order scheduler-dependent; parallel execution belongs in the \
                         sanctioned shard runner (crates/simnet/src/shard.rs), or add \
                         `// det: allow(parallel: <why scheduling cannot reach simulated state>)`"
                    ),
                },
            );
        }
    }
}

/// DET004: crate roots must forbid `unsafe`.
fn scan_unsafe_forbid(sf: &SourceFile, lexed: &Lexed, findings: &mut Vec<Finding>) {
    let normalized: String = lexed
        .masked
        .chars()
        .filter(|c| !c.is_whitespace())
        .collect();
    if !normalized.contains("#![forbid(unsafe_code)]") {
        findings.push(Finding {
            rule: RuleId::UnsafeForbid,
            file: sf.rel.clone(),
            line: 1,
            col: 1,
            token: String::new(),
            message: "crate root is missing `#![forbid(unsafe_code)]` — every workspace crate \
                      must forbid unsafe at the root"
                .to_string(),
        });
    }
}

/// Yields `(line, col)` of each whole-identifier occurrence of `ident`.
fn find_ident(masked: &str, ident: &str) -> Vec<(u32, u32)> {
    let mut out = Vec::new();
    let b = masked.as_bytes();
    let mut from = 0usize;
    while let Some(p) = masked[from..].find(ident) {
        let at = from + p;
        let end = at + ident.len();
        let bounded =
            (at == 0 || !is_ident_byte(b[at - 1])) && (end == b.len() || !is_ident_byte(b[end]));
        if bounded {
            out.push(line_col(masked, at));
        }
        from = end;
    }
    out
}

/// Yields `(line, col)` of each `a::b::c` path occurrence: the first
/// segment matched as a whole identifier, then `::` and the following
/// segments with arbitrary whitespace between tokens.
fn find_path(masked: &str, segments: &[&str]) -> Vec<(u32, u32)> {
    if segments.len() == 1 {
        return find_ident(masked, segments[0]);
    }
    let mut out = Vec::new();
    let b = masked.as_bytes();
    for (line, col) in find_ident(masked, segments[0]) {
        let at = offset_of(masked, line, col);
        let mut i = at + segments[0].len();
        let mut ok = true;
        for seg in &segments[1..] {
            while i < b.len() && b[i].is_ascii_whitespace() {
                i += 1;
            }
            if !masked[i..].starts_with("::") {
                ok = false;
                break;
            }
            i += 2;
            while i < b.len() && b[i].is_ascii_whitespace() {
                i += 1;
            }
            if !masked[i..].starts_with(seg)
                || masked[i + seg.len()..]
                    .bytes()
                    .next()
                    .is_some_and(is_ident_byte)
            {
                ok = false;
                break;
            }
            i += seg.len();
        }
        if ok {
            out.push((line, col));
        }
    }
    out
}

/// Yields `(line, col)` of each `name!` macro invocation.
fn find_macro(masked: &str, name: &str) -> Vec<(u32, u32)> {
    let b = masked.as_bytes();
    find_ident(masked, name)
        .into_iter()
        .filter(|&(line, col)| {
            let mut i = offset_of(masked, line, col) + name.len();
            while i < b.len() && b[i].is_ascii_whitespace() {
                i += 1;
            }
            b.get(i) == Some(&b'!')
        })
        .collect()
}

fn is_ident_byte(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_'
}

/// Byte offset of 1-based `(line, col)` in `text`.
fn offset_of(text: &str, line: u32, col: u32) -> usize {
    let mut remaining = line - 1;
    let mut off = 0usize;
    for (i, c) in text.char_indices() {
        if remaining == 0 {
            return i + (col as usize - 1);
        }
        if c == '\n' {
            remaining -= 1;
            off = i + 1;
        }
    }
    off + (col as usize - 1)
}

/// 1-based `(line, col)` of byte offset `at` in `text`.
fn line_col(text: &str, at: usize) -> (u32, u32) {
    let before = &text[..at];
    let line = before.matches('\n').count() as u32 + 1;
    let col = (at - before.rfind('\n').map(|p| p + 1).unwrap_or(0)) as u32 + 1;
    (line, col)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn src_file(rel: &str, crate_name: &str, kind: FileKind, root: bool) -> SourceFile {
        SourceFile {
            rel: rel.to_string(),
            crate_name: crate_name.to_string(),
            kind,
            is_crate_root: root,
        }
    }

    fn scan(rel: &str, crate_name: &str, src: &str) -> Vec<Finding> {
        let sf = src_file(rel, crate_name, FileKind::Src, rel.ends_with("src/lib.rs"));
        let lexed = lex(src);
        let mut findings = Vec::new();
        scan_file(&sf, &lexed, &mut findings);
        findings
    }

    #[test]
    fn hashmap_in_protocol_crate_is_flagged_with_position() {
        let f = scan(
            "crates/pubsub/src/forest.rs",
            "pubsub",
            "use std::collections::BTreeMap;\nlet m: HashMap<u8, u8> = x();\n",
        );
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, RuleId::UnorderedCollections);
        assert_eq!((f[0].line, f[0].col), (2, 8));
    }

    #[test]
    fn annotated_hashmap_is_suppressed_trailing_and_preceding() {
        let ok = scan(
            "crates/pubsub/src/forest.rs",
            "pubsub",
            "let m: HashMap<u8, u8> = x(); // det: allow(unordered: key-only lookups)\n",
        );
        assert!(ok.is_empty(), "{ok:?}");
        let ok = scan(
            "crates/pubsub/src/forest.rs",
            "pubsub",
            "// det: allow(unordered: key-only lookups)\nlet m: HashMap<u8, u8> = x();\n",
        );
        assert!(ok.is_empty(), "{ok:?}");
    }

    #[test]
    fn allow_without_reason_does_not_suppress_and_is_itself_flagged() {
        let f = scan(
            "crates/pubsub/src/forest.rs",
            "pubsub",
            "let m: HashMap<u8, u8> = x(); // det: allow(unordered)\n",
        );
        let rules: Vec<RuleId> = f.iter().map(|x| x.rule).collect();
        assert!(rules.contains(&RuleId::UnorderedCollections));
        assert!(rules.contains(&RuleId::BadAnnotation));
    }

    #[test]
    fn unknown_allow_class_is_flagged() {
        let f = scan(
            "crates/dht/src/node.rs",
            "dht",
            "let x = 1; // det: allow(speed: because)\n",
        );
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, RuleId::BadAnnotation);
    }

    #[test]
    fn entropy_paths_are_matched_across_whitespace() {
        let f = scan(
            "crates/simnet/src/sim.rs",
            "simnet",
            "let t = Instant ::\n    now();\nlet v = std::env::var(\"X\");\n",
        );
        let tokens: Vec<&str> = f.iter().map(|x| x.token.as_str()).collect();
        assert!(tokens.contains(&"Instant::now"));
        assert!(tokens.contains(&"env::var"));
    }

    #[test]
    fn instant_import_alone_is_not_flagged() {
        let f = scan(
            "crates/bench/src/scenarios/simcore.rs",
            "bench",
            "use std::time::Instant;\n",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn env_args_is_not_env_var() {
        let f = scan(
            "crates/bench/src/bin/x.rs",
            "bench",
            "let a: Vec<String> = std::env::args().collect();\n",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn println_flagged_everywhere_but_allowed_modules() {
        let f = scan(
            "crates/bench/src/bin/totoro_bench.rs",
            "bench",
            "println!(\"hi\");\n",
        );
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, RuleId::GoldenSurface);
        let ok = scan(
            "crates/bench/src/logging.rs",
            "bench",
            "eprintln!(\"hi\");\n",
        );
        assert!(ok.is_empty());
    }

    #[test]
    fn eprint_does_not_shadow_print_boundaries() {
        // `eprint!` must match eprint (1 finding), not also `print`.
        let f = scan("crates/core/src/x.rs", "core", "eprint!(\"a\");\n");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].token, "eprint");
    }

    #[test]
    fn non_macro_print_identifier_is_not_flagged() {
        let f = scan(
            "crates/core/src/x.rs",
            "core",
            "fn print(x: u8) {}\nprint(3);\n",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn crate_root_without_forbid_unsafe_is_flagged() {
        let sf = src_file("crates/foo/src/lib.rs", "foo", FileKind::Src, true);
        let lexed = lex("pub fn f() {}\n");
        let mut f = Vec::new();
        scan_file(&sf, &lexed, &mut f);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, RuleId::UnsafeForbid);
        let lexed = lex("#![forbid(unsafe_code)]\npub fn f() {}\n");
        let mut ok = Vec::new();
        scan_file(&sf, &lexed, &mut ok);
        assert!(ok.is_empty());
    }

    #[test]
    fn forbid_attr_inside_comment_does_not_satisfy_det004() {
        let sf = src_file("crates/foo/src/lib.rs", "foo", FileKind::Src, true);
        let lexed = lex("// #![forbid(unsafe_code)]\npub fn f() {}\n");
        let mut f = Vec::new();
        scan_file(&sf, &lexed, &mut f);
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn non_protocol_crates_are_out_of_scope_for_collections() {
        let f = scan(
            "crates/detlint/src/rules.rs",
            "detlint",
            "let m: HashMap<u8,u8> = x();\n",
        );
        assert!(f.is_empty());
    }

    #[test]
    fn tests_and_benches_are_out_of_scope_for_line_rules() {
        let sf = src_file(
            "crates/pubsub/tests/forest.rs",
            "pubsub",
            FileKind::Tests,
            false,
        );
        let lexed = lex("let m: HashMap<u8,u8> = x(); println!(\"t\");\n");
        let mut f = Vec::new();
        scan_file(&sf, &lexed, &mut f);
        assert!(f.is_empty());
    }

    #[test]
    fn hashmap_inside_raw_string_or_comment_is_not_flagged() {
        let f = scan(
            "crates/pubsub/src/forest.rs",
            "pubsub",
            "// a HashMap lives here\nlet s = r#\"HashMap\"#;\nlet t = \"HashMap\";\n",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn thread_spawn_in_protocol_crate_is_flagged_with_position() {
        let f = scan(
            "crates/dht/src/node.rs",
            "dht",
            "let h = std::thread::spawn(|| {});\n",
        );
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, RuleId::ThreadPrimitives);
        assert_eq!((f[0].line, f[0].col), (1, 14));
        assert_eq!(f[0].token, "thread::spawn");
    }

    #[test]
    fn mutex_and_mpsc_are_flagged_and_allow_parallel_suppresses() {
        let f = scan(
            "crates/pubsub/src/forest.rs",
            "pubsub",
            "use std::sync::{mpsc, Mutex};\n",
        );
        let tokens: Vec<&str> = f.iter().map(|x| x.token.as_str()).collect();
        assert!(tokens.contains(&"Mutex"), "{f:?}");
        assert!(tokens.contains(&"mpsc"), "{f:?}");
        let ok = scan(
            "crates/pubsub/src/forest.rs",
            "pubsub",
            "let m = Mutex::new(0); // det: allow(parallel: host-only metric)\n",
        );
        assert!(ok.is_empty(), "{ok:?}");
    }

    #[test]
    fn shard_runner_module_is_exempt_from_thread_rule() {
        let ok = scan(
            "crates/simnet/src/shard.rs",
            "simnet",
            "std::thread::scope(|s| { let _ = s; });\nlet m = Mutex::new(0);\n",
        );
        assert!(ok.is_empty(), "{ok:?}");
    }

    #[test]
    fn thread_primitives_outside_protocol_crates_are_not_flagged() {
        let ok = scan(
            "crates/detlint/src/workspace.rs",
            "detlint",
            "let h = std::thread::spawn(|| {});\nlet m = Mutex::new(0);\n",
        );
        assert!(ok.is_empty(), "{ok:?}");
    }

    #[test]
    fn thread_primitives_in_tests_are_out_of_scope() {
        let sf = src_file(
            "crates/simnet/tests/shard_equiv.rs",
            "simnet",
            FileKind::Tests,
            false,
        );
        let lexed = lex("let (tx, rx) = mpsc::channel();\n");
        let mut f = Vec::new();
        scan_file(&sf, &lexed, &mut f);
        assert!(f.is_empty(), "{f:?}");
    }
}
