//! The determinism rule set (DESIGN.md §11, §16).
//!
//! Each rule scans the *masked* text produced by [`crate::lexer`] — so
//! comments and string literals can never trigger or hide a finding —
//! and reports rustc-style `file:line:col` diagnostics. Findings are
//! suppressible per line with `// det: allow(<class>: <reason>)`, except
//! `unsafe-forbid` and `bad-annotation`, which guard the suppression
//! mechanism itself.
//!
//! DET001–DET006 are token rules over the mask. The concurrency/numerics
//! pack (DET007–DET010) additionally consults the item tracker
//! ([`crate::items`]): inline `#[cfg(test)]` bodies are out of scope,
//! DET009 reads the enclosing function's return type, and DET001/DET006
//! chase `use ... as` renames that would smuggle a forbidden name past a
//! plain token match.

use crate::items::{self, ItemMap};
use crate::lexer::{Allow, Lexed};
use crate::workspace::{FileKind, SourceFile};

/// Crates whose iteration order, RNG draws, and protocol decisions feed
/// golden output: any unordered collection there needs a written proof.
pub const PROTOCOL_CRATES: &[&str] = &[
    "simnet",
    "dht",
    "pubsub",
    "core",
    "baselines",
    "bandit",
    "ml",
    "mc",
];

/// Crates where ambient entropy (wall clocks, OS RNG, environment) is
/// forbidden: the protocol crates plus the harness that renders goldens.
pub const ENTROPY_CRATES: &[&str] = &[
    "simnet",
    "dht",
    "pubsub",
    "core",
    "baselines",
    "bandit",
    "ml",
    "mc",
    "bench",
];

/// The only modules allowed to write to stdout/stderr directly: stdout is
/// the golden surface (report emission) and stderr goes through the
/// leveled logger. Everything else must route through these.
pub const GOLDEN_ALLOWED_FILES: &[&str] =
    &["crates/bench/src/report.rs", "crates/bench/src/logging.rs"];

/// The only protocol-crate modules allowed to use thread primitives: the
/// conservative shard runner, whose barrier/mailbox protocol carries a
/// written determinism argument (DESIGN.md §13, §16). Ad-hoc threads,
/// locks, or channels anywhere else in a protocol crate make event order
/// depend on the scheduler.
pub const SHARD_RUNNER_FILES: &[&str] = &["crates/simnet/src/shard.rs"];

/// Crates outside the protocol set that still submit to the thread-
/// primitive rule: the linter itself scans files in parallel and must
/// carry its own written `det: allow(parallel: ...)` sanction.
pub const THREAD_RULE_EXTRA_CRATES: &[&str] = &["detlint"];

/// The sanctioned canonical-order float-reduction helpers (DET009): the
/// one place float sums/folds may live without a per-site proof.
pub const FLOAT_REDUCTION_FILES: &[&str] = &["crates/simnet/src/numeric.rs"];

/// The sanctioned home of raw simulated-time arithmetic (DET010):
/// `SimTime`/`SimDuration` define saturating operators here so nothing
/// else needs unchecked `+`/`-` on raw microsecond counters.
pub const TIME_AXIOM_FILES: &[&str] = &["crates/simnet/src/time.rs"];

/// Stable rule identifiers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RuleId {
    /// DET001: unordered collection in a protocol crate without an allow.
    UnorderedCollections,
    /// DET002: ambient entropy (wall clock, OS RNG, env) in sim crates.
    AmbientEntropy,
    /// DET003: direct stdout/stderr writes outside report/logging.
    GoldenSurface,
    /// DET004: crate root missing `#![forbid(unsafe_code)]`.
    UnsafeForbid,
    /// DET005: malformed `det: allow` (unknown class or missing reason).
    BadAnnotation,
    /// DET006: raw thread primitives in a protocol crate outside the
    /// sanctioned shard-runner module.
    ThreadPrimitives,
    /// DET007: atomic op without an explicit `Ordering`, or `Relaxed`
    /// without a written proof.
    AtomicOrdering,
    /// DET008: `Mutex` acquisition outside the shard runner, or a
    /// nested/non-canonical mailbox acquisition inside it.
    LockDiscipline,
    /// DET009: order-sensitive f32/f64 reduction outside the sanctioned
    /// canonical-order helpers, without a commutativity proof.
    FloatDeterminism,
    /// DET010: unchecked `+`/`-` on raw simulated-time microseconds
    /// outside `time.rs`.
    TimeArithmetic,
}

/// All rules, in diagnostic-code order (drives `rule_counts` rendering).
pub const ALL_RULES: &[RuleId] = &[
    RuleId::UnorderedCollections,
    RuleId::AmbientEntropy,
    RuleId::GoldenSurface,
    RuleId::UnsafeForbid,
    RuleId::BadAnnotation,
    RuleId::ThreadPrimitives,
    RuleId::AtomicOrdering,
    RuleId::LockDiscipline,
    RuleId::FloatDeterminism,
    RuleId::TimeArithmetic,
];

impl RuleId {
    /// `DET0xx` code used in diagnostics and the JSON report.
    pub fn code(self) -> &'static str {
        match self {
            RuleId::UnorderedCollections => "DET001",
            RuleId::AmbientEntropy => "DET002",
            RuleId::GoldenSurface => "DET003",
            RuleId::UnsafeForbid => "DET004",
            RuleId::BadAnnotation => "DET005",
            RuleId::ThreadPrimitives => "DET006",
            RuleId::AtomicOrdering => "DET007",
            RuleId::LockDiscipline => "DET008",
            RuleId::FloatDeterminism => "DET009",
            RuleId::TimeArithmetic => "DET010",
        }
    }

    /// Human rule name.
    pub fn name(self) -> &'static str {
        match self {
            RuleId::UnorderedCollections => "unordered-collections",
            RuleId::AmbientEntropy => "ambient-entropy",
            RuleId::GoldenSurface => "golden-surface",
            RuleId::UnsafeForbid => "unsafe-forbid",
            RuleId::BadAnnotation => "bad-annotation",
            RuleId::ThreadPrimitives => "thread-primitives",
            RuleId::AtomicOrdering => "atomic-ordering",
            RuleId::LockDiscipline => "lock-discipline",
            RuleId::FloatDeterminism => "float-determinism",
            RuleId::TimeArithmetic => "time-arithmetic",
        }
    }

    /// The `det: allow(<class>: ...)` class that suppresses this rule,
    /// if it is suppressible at all.
    pub fn allow_class(self) -> Option<&'static str> {
        match self {
            RuleId::UnorderedCollections => Some("unordered"),
            RuleId::AmbientEntropy => Some("entropy"),
            RuleId::GoldenSurface => Some("golden_out"),
            RuleId::ThreadPrimitives => Some("parallel"),
            RuleId::AtomicOrdering => Some("ordering"),
            RuleId::LockDiscipline => Some("lock"),
            RuleId::FloatDeterminism => Some("float"),
            RuleId::TimeArithmetic => Some("time"),
            RuleId::UnsafeForbid | RuleId::BadAnnotation => None,
        }
    }
}

/// Every valid annotation class (for `bad-annotation` validation).
pub const ALLOW_CLASSES: &[&str] = &[
    "unordered",
    "entropy",
    "golden_out",
    "parallel",
    "ordering",
    "lock",
    "float",
    "time",
];

/// One diagnostic.
#[derive(Debug, Clone)]
pub struct Finding {
    pub rule: RuleId,
    /// Workspace-relative path with `/` separators.
    pub file: String,
    /// 1-based position of the offending token.
    pub line: u32,
    pub col: u32,
    /// The matched token (empty for file-level findings).
    pub token: String,
    pub message: String,
}

/// Tokens DET001 hunts for: unordered std collections and the hasher
/// that seeds them. Matched as whole identifiers in code.
const UNORDERED_TOKENS: &[&str] = &["HashMap", "HashSet", "RandomState"];

/// Identifier paths DET002 hunts for. Multi-segment patterns match the
/// exact `a::b` sequence (whitespace-tolerant); the single-segment ones
/// match a bare identifier.
const ENTROPY_PATTERNS: &[&[&str]] = &[
    &["Instant", "now"],
    &["SystemTime"],
    &["thread_rng"],
    &["rand", "random"],
    &["env", "var"],
];

/// Macros DET003 forbids outside the allowed modules. `eprint` before
/// `print` so the longest name wins nothing — matches are whole-ident.
const GOLDEN_MACROS: &[&str] = &["println", "print", "eprintln", "eprint", "dbg"];

/// Identifier paths DET006 hunts for: spawning threads and the sync
/// primitives that make event order scheduler-dependent. `Mutex` and
/// `mpsc` are matched bare so both `std::sync::Mutex` and a `use`d name
/// trip the rule.
const THREAD_PATTERNS: &[&[&str]] = &[
    &["thread", "spawn"],
    &["thread", "scope"],
    &["Mutex"],
    &["mpsc"],
];

/// Bare tokens whose `use ... as` renames DET006 chases.
const THREAD_ALIAS_TARGETS: &[&str] = &["Mutex", "mpsc"];

/// Atomic method names DET007 audits for an explicit `Ordering` argument
/// (engaged only in files that mention an `Atomic*` type).
const ATOMIC_METHODS: &[&str] = &[
    "load",
    "store",
    "swap",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_nand",
    "fetch_or",
    "fetch_xor",
    "fetch_max",
    "fetch_min",
    "fetch_update",
    "compare_exchange",
    "compare_exchange_weak",
];

/// Identifiers that satisfy DET007's explicit-ordering requirement when
/// they appear in an atomic call's argument list.
const ORDERING_IDENTS: &[&str] = &[
    "Ordering", "SeqCst", "AcqRel", "Acquire", "Release", "Relaxed",
];

/// Duration accessors DET010 watches for adjacent raw arithmetic.
const TIME_ACCESSORS: &[&str] = &["as_micros", "as_millis", "as_secs", "as_nanos"];

/// Time constructors DET010 audits for unchecked arithmetic in the
/// argument list.
const TIME_CONSTRUCTORS: &[&str] = &["from_micros", "from_millis", "from_secs"];

/// Per-file scan state: the masked text, the item map, and which allows
/// actually suppressed something (stale-suppression detection).
struct Scan<'a> {
    sf: &'a SourceFile,
    masked: &'a str,
    allows: &'a [Allow],
    items: ItemMap,
    used: Vec<bool>,
}

impl<'a> Scan<'a> {
    /// Marks the matching allow used and reports whether `rule` is
    /// suppressed on `line`.
    fn suppressed(&mut self, rule: RuleId, line: u32) -> bool {
        let Some(class) = rule.allow_class() else {
            return false;
        };
        if let Some(i) = self
            .allows
            .iter()
            .position(|a| a.applies_to == line && a.class == class && !a.reason.is_empty())
        {
            self.used[i] = true;
            return true;
        }
        false
    }

    fn push(&mut self, findings: &mut Vec<Finding>, finding: Finding) {
        if !self.suppressed(finding.rule, finding.line) {
            findings.push(finding);
        }
    }

    fn finding(&self, rule: RuleId, at: (u32, u32), token: &str, message: String) -> Finding {
        Finding {
            rule,
            file: self.sf.rel.clone(),
            line: at.0,
            col: at.1,
            token: token.to_string(),
            message,
        }
    }

    /// Whether the byte offset sits in an inline `#[cfg(test)]` body —
    /// out of scope for the DET007–DET010 pack, like test files are for
    /// every line rule.
    fn in_test(&self, off: usize) -> bool {
        self.items.in_test(off)
    }
}

/// Runs every applicable rule over one lexed file. Returns a mask,
/// parallel to `lexed.allows`, of which annotations suppressed at least
/// one finding (the rest are stale).
pub fn scan_file(sf: &SourceFile, lexed: &Lexed, findings: &mut Vec<Finding>) -> Vec<bool> {
    let mut s = Scan {
        sf,
        masked: &lexed.masked,
        allows: &lexed.allows,
        items: items::build(&lexed.masked),
        used: vec![false; lexed.allows.len()],
    };
    validate_allows(&s, findings);

    // Line rules look at hand-written code only: `src/` files. Test and
    // bench code asserts over the protocol, it does not produce protocol
    // decisions or golden bytes.
    if sf.kind == FileKind::Src {
        let protocol = in_crates(&sf.crate_name, PROTOCOL_CRATES);
        let entropy = in_crates(&sf.crate_name, ENTROPY_CRATES);
        if protocol {
            scan_unordered(&mut s, findings);
        }
        if (protocol || in_crates(&sf.crate_name, THREAD_RULE_EXTRA_CRATES))
            && !SHARD_RUNNER_FILES.contains(&sf.rel.as_str())
        {
            scan_thread_primitives(&mut s, findings);
        }
        if entropy {
            scan_entropy(&mut s, findings);
            scan_atomic_ordering(&mut s, findings);
            scan_lock_discipline(&mut s, findings);
            if !TIME_AXIOM_FILES.contains(&sf.rel.as_str()) {
                scan_time_arithmetic(&mut s, findings);
            }
        }
        if entropy && !GOLDEN_ALLOWED_FILES.contains(&sf.rel.as_str()) {
            scan_golden_surface(&mut s, findings);
        }
        if protocol && !FLOAT_REDUCTION_FILES.contains(&sf.rel.as_str()) {
            scan_float_determinism(&mut s, findings);
        }
    }

    if sf.is_crate_root {
        scan_unsafe_forbid(&mut s, findings);
    }
    s.used
}

fn in_crates(name: &str, list: &[&str]) -> bool {
    list.contains(&name)
}

/// DET005: every annotation must name a known class and carry a reason.
fn validate_allows(s: &Scan, findings: &mut Vec<Finding>) {
    for a in s.allows {
        if !ALLOW_CLASSES.contains(&a.class.as_str()) {
            findings.push(Finding {
                rule: RuleId::BadAnnotation,
                file: s.sf.rel.clone(),
                line: a.line,
                col: a.col,
                token: a.class.clone(),
                message: format!(
                    "unknown det: allow class `{}` (expected one of: {})",
                    a.class,
                    ALLOW_CLASSES.join(", ")
                ),
            });
        } else if a.reason.is_empty() {
            findings.push(Finding {
                rule: RuleId::BadAnnotation,
                file: s.sf.rel.clone(),
                line: a.line,
                col: a.col,
                token: a.class.clone(),
                message: format!(
                    "det: allow({}: ...) requires a written reason — suppressions without \
                     justification defeat the audit trail",
                    a.class
                ),
            });
        }
    }
}

/// DET001: unordered collections in protocol crates.
fn scan_unordered(s: &mut Scan, findings: &mut Vec<Finding>) {
    for tok in UNORDERED_TOKENS {
        for (line, col) in find_ident(s.masked, tok) {
            let f = s.finding(
                RuleId::UnorderedCollections,
                (line, col),
                tok,
                format!(
                    "`{tok}` in a protocol crate: iteration order is hash-seed dependent; \
                     convert to an ordered collection or add \
                     `// det: allow(unordered: <why order never escapes>)`"
                ),
            );
            s.push(findings, f);
        }
    }
    scan_alias_evasion(s, findings, UNORDERED_TOKENS, RuleId::UnorderedCollections);
}

/// Flags every use of a local alias that renames a forbidden token
/// (`use std::sync::Mutex as Lock;` then `Lock::new(..)`): the rename
/// site itself is caught by the plain token scan, the *uses* only by the
/// alias table.
fn scan_alias_evasion(s: &mut Scan, findings: &mut Vec<Finding>, targets: &[&str], rule: RuleId) {
    let aliases: Vec<(String, String, u32, u32)> = s
        .items
        .aliases
        .iter()
        .filter(|a| targets.contains(&a.target.as_str()) && a.alias != a.target)
        .map(|a| (a.target.clone(), a.alias.clone(), a.line, a.col))
        .collect();
    for (target, alias, a_line, a_col) in aliases {
        for (line, col) in find_ident(s.masked, &alias) {
            if (line, col) == (a_line, a_col) {
                continue; // the rename itself; the target token is flagged there
            }
            let f = s.finding(
                rule,
                (line, col),
                &alias,
                format!(
                    "`{alias}` is a local rename of `{target}` (`use ... as {alias}`): the \
                     alias carries the same determinism hazard as the name it hides"
                ),
            );
            s.push(findings, f);
        }
    }
}

/// DET002: ambient entropy sources in sim/protocol/bench crates.
fn scan_entropy(s: &mut Scan, findings: &mut Vec<Finding>) {
    for pat in ENTROPY_PATTERNS {
        for (line, col) in find_path(s.masked, pat) {
            let shown = pat.join("::");
            let f = s.finding(
                RuleId::AmbientEntropy,
                (line, col),
                &shown,
                format!(
                    "`{shown}` is ambient entropy: simulated time and seeded RNG streams \
                     are the only randomness allowed here; add \
                     `// det: allow(entropy: <why this cannot reach golden output>)` if the \
                     value is provably outside the deterministic surface"
                ),
            );
            s.push(findings, f);
        }
    }
}

/// DET003: direct stdout/stderr writes outside report/logging.
fn scan_golden_surface(s: &mut Scan, findings: &mut Vec<Finding>) {
    for mac in GOLDEN_MACROS {
        for (line, col) in find_macro(s.masked, mac) {
            let f = s.finding(
                RuleId::GoldenSurface,
                (line, col),
                mac,
                format!(
                    "`{mac}!` writes directly to the process streams: stdout is the golden \
                     surface (route through totoro_bench::report) and stderr goes through \
                     totoro_bench::logging; or add \
                     `// det: allow(golden_out: <why this stream is not a golden surface>)`"
                ),
            );
            s.push(findings, f);
        }
    }
}

/// DET006: thread primitives outside the sanctioned shard runner.
fn scan_thread_primitives(s: &mut Scan, findings: &mut Vec<Finding>) {
    for pat in THREAD_PATTERNS {
        for (line, col) in find_path(s.masked, pat) {
            let shown = pat.join("::");
            let f = s.finding(
                RuleId::ThreadPrimitives,
                (line, col),
                &shown,
                format!(
                    "`{shown}` in a determinism-scoped crate: threads, locks, and channels \
                     make event order scheduler-dependent; parallel execution belongs in the \
                     sanctioned shard runner (crates/simnet/src/shard.rs), or add \
                     `// det: allow(parallel: <why scheduling cannot reach simulated state>)`"
                ),
            );
            s.push(findings, f);
        }
    }
    scan_alias_evasion(s, findings, THREAD_ALIAS_TARGETS, RuleId::ThreadPrimitives);
}

/// DET004: crate roots must forbid `unsafe`.
fn scan_unsafe_forbid(s: &mut Scan, findings: &mut Vec<Finding>) {
    let normalized: String = s.masked.chars().filter(|c| !c.is_whitespace()).collect();
    if !normalized.contains("#![forbid(unsafe_code)]") {
        findings.push(Finding {
            rule: RuleId::UnsafeForbid,
            file: s.sf.rel.clone(),
            line: 1,
            col: 1,
            token: String::new(),
            message: "crate root is missing `#![forbid(unsafe_code)]` — every workspace crate \
                      must forbid unsafe at the root"
                .to_string(),
        });
    }
}

/// DET007: every atomic op names an explicit `Ordering`, and `Relaxed`
/// carries a written proof. The missing-argument check engages only in
/// files that mention an `Atomic*` type, so `slice.swap(i, j)` in
/// atomic-free code stays silent.
fn scan_atomic_ordering(s: &mut Scan, findings: &mut Vec<Finding>) {
    // (a) `Ordering::Relaxed` demands a per-site proof: on the shard
    // publish/exchange path a relaxed load can observe a stale window
    // bound and silently split the byte-identity contract.
    for (line, col) in find_path(s.masked, &["Ordering", "Relaxed"]) {
        if s.in_test(offset_of(s.masked, line, col)) {
            continue;
        }
        let f = s.finding(
            RuleId::AtomicOrdering,
            (line, col),
            "Ordering::Relaxed",
            "`Ordering::Relaxed` provides no happens-before edge: the shard window \
             protocol publishes with `SeqCst` (DESIGN.md §16); add \
             `// det: allow(ordering: <why relaxed cannot reorder into simulated state>)` \
             with the proof, or strengthen the ordering"
                .to_string(),
        );
        s.push(findings, f);
    }
    // (b) atomic calls must pass an ordering at all.
    if !s.masked.contains("Atomic") {
        return;
    }
    for method in ATOMIC_METHODS {
        for off in find_method_calls(s.masked, method) {
            if s.in_test(off) {
                continue;
            }
            let Some((args_start, args_end)) = call_args(s.masked, off + method.len()) else {
                continue;
            };
            let args = &s.masked[args_start..args_end];
            if ORDERING_IDENTS
                .iter()
                .any(|id| !find_ident(args, id).is_empty())
            {
                continue;
            }
            let at = line_col(s.masked, off);
            let f = s.finding(
                RuleId::AtomicOrdering,
                at,
                method,
                format!(
                    "`.{method}(..)` in a file using atomics does not name a memory \
                     `Ordering`: every atomic op must make its ordering explicit \
                     (DESIGN.md §16); if this is not an atomic, add \
                     `// det: allow(ordering: <what type this method belongs to>)`"
                ),
            );
            s.push(findings, f);
        }
    }
}

/// DET008: lock discipline. Outside the shard runner any `.lock()` is a
/// violation (DET006 catches the `Mutex` *type*; this catches
/// acquisitions through aliases or passed-in guards). Inside the shard
/// runner, acquisitions must follow the canonical mailbox order — writer
/// locks its own row `mailboxes[core.id][j]`, reader drains its own
/// column `row[core.id]` — and guard scopes must never nest.
fn scan_lock_discipline(s: &mut Scan, findings: &mut Vec<Finding>) {
    let sites: Vec<usize> = find_method_calls(s.masked, "lock")
        .into_iter()
        .filter(|&off| !s.in_test(off))
        .collect();
    if sites.is_empty() {
        return;
    }
    if !SHARD_RUNNER_FILES.contains(&s.sf.rel.as_str()) {
        for off in sites {
            let at = line_col(s.masked, off);
            let f = s.finding(
                RuleId::LockDiscipline,
                at,
                "lock",
                "`.lock()` outside the sanctioned shard runner \
                 (crates/simnet/src/shard.rs): mutex acquisition order is scheduler \
                 state; move the critical section into the shard runner or add \
                 `// det: allow(lock: <why this guard cannot order simulated state>)`"
                    .to_string(),
            );
            s.push(findings, f);
        }
        return;
    }
    // Inside the shard runner: canonical index shape per acquisition.
    let mut flagged = vec![false; sites.len()];
    for (i, &off) in sites.iter().enumerate() {
        let groups = index_groups_before(s.masked, off);
        let ok = match groups.len() {
            1 | 2 => groups[0] == "core.id",
            _ => false,
        };
        if ok {
            continue;
        }
        flagged[i] = true;
        let at = line_col(s.masked, off);
        let shape = if groups.is_empty() {
            "an un-indexed mutex".to_string()
        } else {
            format!("first index `{}`", groups[0])
        };
        let f = s.finding(
            RuleId::LockDiscipline,
            at,
            "lock",
            format!(
                "non-canonical mailbox acquisition in the shard runner ({shape}): the \
                 deadlock-freedom argument (DESIGN.md §16) requires writers to lock \
                 their own row `mailboxes[core.id][j]` and readers their own column \
                 `row[core.id]`; or add `// det: allow(lock: <deadlock-freedom proof>)`"
            ),
        );
        s.push(findings, f);
    }
    // Nested guard scopes: a second acquisition while any guard is live.
    let ranges: Vec<(usize, usize)> = sites
        .iter()
        .map(|&off| guard_range(s.masked, off))
        .collect();
    for (i, &off) in sites.iter().enumerate() {
        if flagged[i] {
            continue;
        }
        let nested = ranges
            .iter()
            .enumerate()
            .any(|(j, &(start, end))| j != i && start < off && off < end);
        if !nested {
            continue;
        }
        let at = line_col(s.masked, off);
        let f = s.finding(
            RuleId::LockDiscipline,
            at,
            "lock",
            "nested lock acquisition in the shard runner: a second `.lock()` while \
             another guard is live creates a lock-order graph the canonical \
             (src, dst) mailbox argument cannot cover (DESIGN.md §16); narrow the \
             first guard's scope or add `// det: allow(lock: <deadlock-freedom proof>)`"
                .to_string(),
        );
        s.push(findings, f);
    }
}

/// DET009: order-sensitive float reductions in protocol crates. IEEE
/// addition is not associative, so the byte-identity contract across
/// `--shards` forbids folding f32/f64 in incidental order. Detected
/// shapes: float-turbofish `sum`/`product`, `fold` seeded with a float,
/// and untyped `sum()`/`product()` whose statement or enclosing function
/// visibly deals in floats.
fn scan_float_determinism(s: &mut Scan, findings: &mut Vec<Finding>) {
    // (a)+(c)+(d): `.sum(..)` / `.product(..)`.
    for method in ["sum", "product"] {
        for off in find_method_calls_or_turbofish(s.masked, method) {
            if s.in_test(off) {
                continue;
            }
            let reason = float_reduction_reason(s, off, method);
            let Some(reason) = reason else { continue };
            let at = line_col(s.masked, off);
            let f = s.finding(
                RuleId::FloatDeterminism,
                at,
                method,
                format!(
                    "float reduction{}: {reason}; IEEE addition is order-sensitive, so \
                     this must use the canonical-order helpers in \
                     crates/simnet/src/numeric.rs or add \
                     `// det: allow(float: <commutativity or canonical-order proof>)`",
                    in_fn_suffix(s, off)
                ),
            );
            s.push(findings, f);
        }
    }
    // (b): `.fold(seed, ..)` with a float seed.
    for off in find_method_calls(s.masked, "fold") {
        if s.in_test(off) {
            continue;
        }
        let Some((args_start, args_end)) = call_args(s.masked, off + "fold".len()) else {
            continue;
        };
        let args = &s.masked[args_start..args_end];
        if !mentions_float(args) {
            continue;
        }
        let at = line_col(s.masked, off);
        let f = s.finding(
            RuleId::FloatDeterminism,
            at,
            "fold",
            format!(
                "`.fold(..)` seeded with a float{}: the accumulation order decides the \
                 bytes unless the operator is exactly commutative and associative \
                 (min/max are; `+`/`*` are not); use the canonical-order helpers in \
                 crates/simnet/src/numeric.rs or add \
                 `// det: allow(float: <commutativity or canonical-order proof>)`",
                in_fn_suffix(s, off)
            ),
        );
        s.push(findings, f);
    }
}

/// Why a `sum`/`product` call at `off` is a float reduction, if it is.
fn float_reduction_reason(s: &Scan, off: usize, method: &str) -> Option<String> {
    let after = &s.masked[off + method.len()..];
    let trimmed = after.trim_start();
    // (a) turbofish: `.sum::<f64>()`.
    if let Some(rest) = trimmed.strip_prefix("::") {
        let ty = rest.trim_start().strip_prefix('<')?.trim_start();
        if ty.starts_with("f32") || ty.starts_with("f64") {
            return Some(format!("`{method}::<{}>`", &ty[..3]));
        }
        return None;
    }
    if !trimmed.starts_with('(') {
        return None;
    }
    // (c) statement mentions a float type or literal.
    let stmt_start = statement_start(s.masked, off);
    if mentions_float(&s.masked[stmt_start..off]) {
        return Some("the statement names an f32/f64".to_string());
    }
    // (d) the enclosing fn returns a float.
    let ret = &s.items.enclosing_fn(off)?.ret;
    if !find_ident(ret, "f32").is_empty() || !find_ident(ret, "f64").is_empty() {
        return Some(format!("the enclosing fn returns `{}`", ret.trim()));
    }
    None
}

/// ` in fn \`name\`` when the item tracker knows the enclosing function.
fn in_fn_suffix(s: &Scan, off: usize) -> String {
    match s.items.enclosing_fn(off) {
        Some(f) if !f.name.is_empty() => format!(" in fn `{}`", f.name),
        _ => String::new(),
    }
}

/// DET010: unchecked arithmetic on raw simulated-time integers outside
/// `time.rs`. `SimTime`/`SimDuration` already define saturating
/// operators; the hazard is the raw-`u64` escape hatch — `as_micros()`
/// followed by `+`/`-`, or `from_micros(a + b)` — which wraps in release
/// builds and panics in debug, exactly the class the mc closeout clamp
/// papers over.
fn scan_time_arithmetic(s: &mut Scan, findings: &mut Vec<Finding>) {
    let b = s.masked.as_bytes();
    let mut hit_lines: Vec<u32> = Vec::new();
    // (b) constructors with `+`/`-` inside the argument list.
    for ctor in TIME_CONSTRUCTORS {
        for (line, col) in find_ident(s.masked, ctor) {
            let off = offset_of(s.masked, line, col);
            if s.in_test(off) {
                continue;
            }
            let Some((args_start, args_end)) = call_args(s.masked, off + ctor.len()) else {
                continue;
            };
            if !has_raw_add_sub(&s.masked[args_start..args_end]) {
                continue;
            }
            hit_lines.push(line);
            let f = s.finding(
                RuleId::TimeArithmetic,
                (line, col),
                ctor,
                format!(
                    "unchecked `+`/`-` inside `{ctor}(..)`: raw microsecond arithmetic \
                     wraps on overflow and skews simulated time silently; use \
                     `saturating_add`/`saturating_sub`/`checked_*` (the `SimTime` \
                     operators in crates/simnet/src/time.rs already saturate) or add \
                     `// det: allow(time: <overflow bound proof>)`"
                ),
            );
            s.push(findings, f);
        }
    }
    // (a) accessor immediately followed by a raw `+`/`-`.
    for acc in TIME_ACCESSORS {
        for off in find_method_calls(s.masked, acc) {
            if s.in_test(off) {
                continue;
            }
            let Some((_, args_end)) = call_args(s.masked, off + acc.len()) else {
                continue;
            };
            let mut i = args_end + 1; // past the closing paren
            while i < b.len() && b[i].is_ascii_whitespace() {
                i += 1;
            }
            let hazard = match b.get(i) {
                Some(&b'+') => b.get(i + 1) != Some(&b'='),
                Some(&b'-') => b.get(i + 1) != Some(&b'>'),
                _ => false,
            };
            if !hazard {
                continue;
            }
            let at = line_col(s.masked, off);
            if hit_lines.contains(&at.0) {
                continue; // already reported via the constructor on this line
            }
            hit_lines.push(at.0);
            let f = s.finding(
                RuleId::TimeArithmetic,
                at,
                acc,
                format!(
                    "raw `+`/`-` on `.{acc}()`: unchecked integer arithmetic on simulated \
                     timestamps wraps on overflow; use `saturating_add`/`saturating_sub`/\
                     `checked_*` or the `SimTime`/`SimDuration` operators \
                     (crates/simnet/src/time.rs), or add \
                     `// det: allow(time: <overflow bound proof>)`"
                ),
            );
            s.push(findings, f);
        }
    }
}

/// Whether `text` contains a binary `+` or `-` between value-like
/// operands (`->` arrows and unary minus excluded).
fn has_raw_add_sub(text: &str) -> bool {
    let b = text.as_bytes();
    for (i, &c) in b.iter().enumerate() {
        if c != b'+' && c != b'-' {
            continue;
        }
        if c == b'-' && b.get(i + 1) == Some(&b'>') {
            continue;
        }
        // Binary only: the previous non-whitespace byte must end a value.
        let mut p = i;
        while p > 0 && b[p - 1].is_ascii_whitespace() {
            p -= 1;
        }
        if p == 0 {
            continue;
        }
        let prev = b[p - 1];
        if prev.is_ascii_alphanumeric() || prev == b'_' || prev == b')' || prev == b']' {
            return true;
        }
    }
    false
}

/// Whether `text` visibly deals in floats: an `f32`/`f64` ident or a
/// float literal (`1.5`, `0.0f32`).
fn mentions_float(text: &str) -> bool {
    if !find_ident(text, "f32").is_empty() || !find_ident(text, "f64").is_empty() {
        return true;
    }
    let b = text.as_bytes();
    b.iter().enumerate().any(|(i, &c)| {
        c == b'.'
            && i > 0
            && b[i - 1].is_ascii_digit()
            && b.get(i + 1).is_some_and(u8::is_ascii_digit)
    })
}

/// Byte offset where the statement containing `off` starts (one past the
/// nearest `;`, `{`, `}`, or `,` — commas bound struct-literal fields).
fn statement_start(masked: &str, off: usize) -> usize {
    masked[..off]
        .rfind([';', '{', '}', ','])
        .map(|p| p + 1)
        .unwrap_or(0)
}

/// Offsets of `name` appearing as a method call: `.name(`, whitespace
/// tolerant on both sides of the identifier.
fn find_method_calls(masked: &str, name: &str) -> Vec<usize> {
    method_call_offsets(masked, name, false)
}

/// Like [`find_method_calls`] but also matches `.name::<..>(` turbofish.
fn find_method_calls_or_turbofish(masked: &str, name: &str) -> Vec<usize> {
    method_call_offsets(masked, name, true)
}

fn method_call_offsets(masked: &str, name: &str, turbofish: bool) -> Vec<usize> {
    let b = masked.as_bytes();
    find_ident(masked, name)
        .into_iter()
        .map(|(line, col)| offset_of(masked, line, col))
        .filter(|&off| {
            // Preceded by `.`.
            let mut p = off;
            while p > 0 && b[p - 1].is_ascii_whitespace() {
                p -= 1;
            }
            if p == 0 || b[p - 1] != b'.' {
                return false;
            }
            // Followed by `(` (or `::<..>(` when turbofish is allowed).
            let after = &masked[off + name.len()..];
            let trimmed = after.trim_start();
            trimmed.starts_with('(') || (turbofish && trimmed.starts_with("::"))
        })
        .collect()
}

/// The argument span `(inner_start, inner_end)` of a call whose opening
/// paren follows `from` (whitespace tolerant); `inner_end` is the offset
/// of the closing paren.
fn call_args(masked: &str, from: usize) -> Option<(usize, usize)> {
    let b = masked.as_bytes();
    let mut i = from;
    while i < b.len() && b[i].is_ascii_whitespace() {
        i += 1;
    }
    if b.get(i) != Some(&b'(') {
        return None;
    }
    let start = i + 1;
    let mut depth = 0usize;
    while i < b.len() {
        match b[i] {
            b'(' => depth += 1,
            b')' => {
                depth -= 1;
                if depth == 0 {
                    return Some((start, i));
                }
            }
            _ => {}
        }
        i += 1;
    }
    None
}

/// The `[..]` index groups textually preceding a `.lock` call, outermost
/// first, whitespace removed: `mailboxes[core.id][j].lock()` yields
/// `["core.id", "j"]`, `row[core.id].lock()` yields `["core.id"]`.
fn index_groups_before(masked: &str, lock_off: usize) -> Vec<String> {
    let b = masked.as_bytes();
    // Step back over whitespace and the `.` introducing the call.
    let mut i = lock_off;
    while i > 0 && b[i - 1].is_ascii_whitespace() {
        i -= 1;
    }
    if i == 0 || b[i - 1] != b'.' {
        return Vec::new();
    }
    i -= 1;
    while i > 0 && b[i - 1].is_ascii_whitespace() {
        i -= 1;
    }
    let mut groups: Vec<String> = Vec::new();
    while i > 0 && b[i - 1] == b']' {
        let close = i - 1;
        let mut depth = 0usize;
        let mut j = close;
        let open = loop {
            match b[j] {
                b']' => depth += 1,
                b'[' => {
                    depth -= 1;
                    if depth == 0 {
                        break j;
                    }
                }
                _ => {}
            }
            if j == 0 {
                return groups;
            }
            j -= 1;
        };
        let text: String = masked[open + 1..close]
            .chars()
            .filter(|c| !c.is_whitespace())
            .collect();
        groups.insert(0, text);
        i = open;
        while i > 0 && b[i - 1].is_ascii_whitespace() {
            i -= 1;
        }
    }
    groups
}

/// The live range of the guard produced by the `.lock()` at `lock_off`:
/// to the end of the enclosing block for a `let`-bound guard, to the end
/// of the statement for a temporary.
fn guard_range(masked: &str, lock_off: usize) -> (usize, usize) {
    let start_of_stmt = statement_start_braces_only(masked, lock_off);
    let let_bound = masked[start_of_stmt..lock_off]
        .trim_start()
        .starts_with("let ");
    let end = if let_bound {
        end_of_enclosing_block(masked, lock_off)
    } else {
        end_of_statement(masked, lock_off)
    };
    (lock_off, end)
}

/// Statement start for guard classification: one past the nearest `;`,
/// `{`, or `}` (no comma — `let` never follows a comma).
fn statement_start_braces_only(masked: &str, off: usize) -> usize {
    masked[..off]
        .rfind([';', '{', '}'])
        .map(|p| p + 1)
        .unwrap_or(0)
}

/// Offset just past the `}` closing the innermost block containing `off`.
fn end_of_enclosing_block(masked: &str, off: usize) -> usize {
    let b = masked.as_bytes();
    let mut depth = 0usize;
    let mut i = off;
    while i < b.len() {
        match b[i] {
            b'{' => depth += 1,
            b'}' => {
                if depth == 0 {
                    return i + 1;
                }
                depth -= 1;
            }
            _ => {}
        }
        i += 1;
    }
    b.len()
}

/// Offset just past the `;` ending the statement containing `off` (or
/// the end of the enclosing block if the statement has no `;`).
fn end_of_statement(masked: &str, off: usize) -> usize {
    let b = masked.as_bytes();
    let mut paren = 0isize;
    let mut i = off;
    while i < b.len() {
        match b[i] {
            b'(' | b'[' | b'{' => paren += 1,
            b')' | b']' => paren -= 1,
            b'}' => {
                if paren == 0 {
                    return i;
                }
                paren -= 1;
            }
            b';' if paren == 0 => return i + 1,
            _ => {}
        }
        i += 1;
    }
    b.len()
}

/// Yields `(line, col)` of each whole-identifier occurrence of `ident`.
fn find_ident(masked: &str, ident: &str) -> Vec<(u32, u32)> {
    let mut out = Vec::new();
    let b = masked.as_bytes();
    let mut from = 0usize;
    while let Some(p) = masked[from..].find(ident) {
        let at = from + p;
        let end = at + ident.len();
        let bounded =
            (at == 0 || !is_ident_byte(b[at - 1])) && (end == b.len() || !is_ident_byte(b[end]));
        if bounded {
            out.push(line_col(masked, at));
        }
        from = end;
    }
    out
}

/// Yields `(line, col)` of each `a::b::c` path occurrence: the first
/// segment matched as a whole identifier, then `::` and the following
/// segments with arbitrary whitespace between tokens.
fn find_path(masked: &str, segments: &[&str]) -> Vec<(u32, u32)> {
    if segments.len() == 1 {
        return find_ident(masked, segments[0]);
    }
    let mut out = Vec::new();
    let b = masked.as_bytes();
    for (line, col) in find_ident(masked, segments[0]) {
        let at = offset_of(masked, line, col);
        let mut i = at + segments[0].len();
        let mut ok = true;
        for seg in &segments[1..] {
            while i < b.len() && b[i].is_ascii_whitespace() {
                i += 1;
            }
            if !masked[i..].starts_with("::") {
                ok = false;
                break;
            }
            i += 2;
            while i < b.len() && b[i].is_ascii_whitespace() {
                i += 1;
            }
            if !masked[i..].starts_with(seg)
                || masked[i + seg.len()..]
                    .bytes()
                    .next()
                    .is_some_and(is_ident_byte)
            {
                ok = false;
                break;
            }
            i += seg.len();
        }
        if ok {
            out.push((line, col));
        }
    }
    out
}

/// Yields `(line, col)` of each `name!` macro invocation.
fn find_macro(masked: &str, name: &str) -> Vec<(u32, u32)> {
    let b = masked.as_bytes();
    find_ident(masked, name)
        .into_iter()
        .filter(|&(line, col)| {
            let mut i = offset_of(masked, line, col) + name.len();
            while i < b.len() && b[i].is_ascii_whitespace() {
                i += 1;
            }
            b.get(i) == Some(&b'!')
        })
        .collect()
}

fn is_ident_byte(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_'
}

/// Byte offset of 1-based `(line, col)` in `text`.
fn offset_of(text: &str, line: u32, col: u32) -> usize {
    let mut remaining = line - 1;
    let mut off = 0usize;
    for (i, c) in text.char_indices() {
        if remaining == 0 {
            return i + (col as usize - 1);
        }
        if c == '\n' {
            remaining -= 1;
            off = i + 1;
        }
    }
    off + (col as usize - 1)
}

/// 1-based `(line, col)` of byte offset `at` in `text`.
fn line_col(text: &str, at: usize) -> (u32, u32) {
    let before = &text[..at];
    let line = before.matches('\n').count() as u32 + 1;
    let col = (at - before.rfind('\n').map(|p| p + 1).unwrap_or(0)) as u32 + 1;
    (line, col)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn src_file(rel: &str, crate_name: &str, kind: FileKind, root: bool) -> SourceFile {
        SourceFile {
            rel: rel.to_string(),
            crate_name: crate_name.to_string(),
            kind,
            is_crate_root: root,
        }
    }

    fn scan(rel: &str, crate_name: &str, src: &str) -> Vec<Finding> {
        let sf = src_file(rel, crate_name, FileKind::Src, rel.ends_with("src/lib.rs"));
        let lexed = lex(src);
        let mut findings = Vec::new();
        scan_file(&sf, &lexed, &mut findings);
        findings
    }

    fn scan_used(rel: &str, crate_name: &str, src: &str) -> (Vec<Finding>, Vec<bool>) {
        let sf = src_file(rel, crate_name, FileKind::Src, rel.ends_with("src/lib.rs"));
        let lexed = lex(src);
        let mut findings = Vec::new();
        let used = scan_file(&sf, &lexed, &mut findings);
        (findings, used)
    }

    #[test]
    fn hashmap_in_protocol_crate_is_flagged_with_position() {
        let f = scan(
            "crates/pubsub/src/forest.rs",
            "pubsub",
            "use std::collections::BTreeMap;\nlet m: HashMap<u8, u8> = x();\n",
        );
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, RuleId::UnorderedCollections);
        assert_eq!((f[0].line, f[0].col), (2, 8));
    }

    #[test]
    fn annotated_hashmap_is_suppressed_trailing_and_preceding() {
        let ok = scan(
            "crates/pubsub/src/forest.rs",
            "pubsub",
            "let m: HashMap<u8, u8> = x(); // det: allow(unordered: key-only lookups)\n",
        );
        assert!(ok.is_empty(), "{ok:?}");
        let ok = scan(
            "crates/pubsub/src/forest.rs",
            "pubsub",
            "// det: allow(unordered: key-only lookups)\nlet m: HashMap<u8, u8> = x();\n",
        );
        assert!(ok.is_empty(), "{ok:?}");
    }

    #[test]
    fn allow_without_reason_does_not_suppress_and_is_itself_flagged() {
        let f = scan(
            "crates/pubsub/src/forest.rs",
            "pubsub",
            "let m: HashMap<u8, u8> = x(); // det: allow(unordered)\n",
        );
        let rules: Vec<RuleId> = f.iter().map(|x| x.rule).collect();
        assert!(rules.contains(&RuleId::UnorderedCollections));
        assert!(rules.contains(&RuleId::BadAnnotation));
    }

    #[test]
    fn unknown_allow_class_is_flagged() {
        let f = scan(
            "crates/dht/src/node.rs",
            "dht",
            "let x = 1; // det: allow(speed: because)\n",
        );
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, RuleId::BadAnnotation);
    }

    #[test]
    fn entropy_paths_are_matched_across_whitespace() {
        let f = scan(
            "crates/simnet/src/sim.rs",
            "simnet",
            "let t = Instant ::\n    now();\nlet v = std::env::var(\"X\");\n",
        );
        let tokens: Vec<&str> = f.iter().map(|x| x.token.as_str()).collect();
        assert!(tokens.contains(&"Instant::now"));
        assert!(tokens.contains(&"env::var"));
    }

    #[test]
    fn instant_import_alone_is_not_flagged() {
        let f = scan(
            "crates/bench/src/scenarios/simcore.rs",
            "bench",
            "use std::time::Instant;\n",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn env_args_is_not_env_var() {
        let f = scan(
            "crates/bench/src/bin/x.rs",
            "bench",
            "let a: Vec<String> = std::env::args().collect();\n",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn println_flagged_everywhere_but_allowed_modules() {
        let f = scan(
            "crates/bench/src/bin/totoro_bench.rs",
            "bench",
            "println!(\"hi\");\n",
        );
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, RuleId::GoldenSurface);
        let ok = scan(
            "crates/bench/src/logging.rs",
            "bench",
            "eprintln!(\"hi\");\n",
        );
        assert!(ok.is_empty());
    }

    #[test]
    fn eprint_does_not_shadow_print_boundaries() {
        // `eprint!` must match eprint (1 finding), not also `print`.
        let f = scan("crates/core/src/x.rs", "core", "eprint!(\"a\");\n");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].token, "eprint");
    }

    #[test]
    fn non_macro_print_identifier_is_not_flagged() {
        let f = scan(
            "crates/core/src/x.rs",
            "core",
            "fn print(x: u8) {}\nprint(3);\n",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn crate_root_without_forbid_unsafe_is_flagged() {
        let sf = src_file("crates/foo/src/lib.rs", "foo", FileKind::Src, true);
        let lexed = lex("pub fn f() {}\n");
        let mut f = Vec::new();
        scan_file(&sf, &lexed, &mut f);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, RuleId::UnsafeForbid);
        let lexed = lex("#![forbid(unsafe_code)]\npub fn f() {}\n");
        let mut ok = Vec::new();
        scan_file(&sf, &lexed, &mut ok);
        assert!(ok.is_empty());
    }

    #[test]
    fn forbid_attr_inside_comment_does_not_satisfy_det004() {
        let sf = src_file("crates/foo/src/lib.rs", "foo", FileKind::Src, true);
        let lexed = lex("// #![forbid(unsafe_code)]\npub fn f() {}\n");
        let mut f = Vec::new();
        scan_file(&sf, &lexed, &mut f);
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn non_protocol_crates_are_out_of_scope_for_collections() {
        let f = scan(
            "crates/detlint/src/rules.rs",
            "detlint",
            "let m: HashMap<u8,u8> = x();\n",
        );
        assert!(f.is_empty());
    }

    #[test]
    fn tests_and_benches_are_out_of_scope_for_line_rules() {
        let sf = src_file(
            "crates/pubsub/tests/forest.rs",
            "pubsub",
            FileKind::Tests,
            false,
        );
        let lexed = lex("let m: HashMap<u8,u8> = x(); println!(\"t\");\n");
        let mut f = Vec::new();
        scan_file(&sf, &lexed, &mut f);
        assert!(f.is_empty());
    }

    #[test]
    fn hashmap_inside_raw_string_or_comment_is_not_flagged() {
        let f = scan(
            "crates/pubsub/src/forest.rs",
            "pubsub",
            "// a HashMap lives here\nlet s = r#\"HashMap\"#;\nlet t = \"HashMap\";\n",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn thread_spawn_in_protocol_crate_is_flagged_with_position() {
        let f = scan(
            "crates/dht/src/node.rs",
            "dht",
            "let h = std::thread::spawn(|| {});\n",
        );
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, RuleId::ThreadPrimitives);
        assert_eq!((f[0].line, f[0].col), (1, 14));
        assert_eq!(f[0].token, "thread::spawn");
    }

    #[test]
    fn mutex_and_mpsc_are_flagged_and_allow_parallel_suppresses() {
        let f = scan(
            "crates/pubsub/src/forest.rs",
            "pubsub",
            "use std::sync::{mpsc, Mutex};\n",
        );
        let tokens: Vec<&str> = f.iter().map(|x| x.token.as_str()).collect();
        assert!(tokens.contains(&"Mutex"), "{f:?}");
        assert!(tokens.contains(&"mpsc"), "{f:?}");
        let ok = scan(
            "crates/pubsub/src/forest.rs",
            "pubsub",
            "let m = Mutex::new(0); // det: allow(parallel: host-only metric)\n",
        );
        assert!(ok.is_empty(), "{ok:?}");
    }

    #[test]
    fn shard_runner_module_is_exempt_from_thread_rule() {
        let ok = scan(
            "crates/simnet/src/shard.rs",
            "simnet",
            "std::thread::scope(|s| { let _ = s; });\nlet m = Mutex::new(0);\n",
        );
        assert!(ok.is_empty(), "{ok:?}");
    }

    #[test]
    fn thread_primitives_outside_determinism_crates_are_not_flagged() {
        let ok = scan(
            "vendor/rand/src/util.rs",
            "vendor/rand",
            "let h = std::thread::spawn(|| {});\nlet m = Mutex::new(0);\n",
        );
        assert!(ok.is_empty(), "{ok:?}");
    }

    #[test]
    fn detlint_itself_submits_to_the_thread_rule() {
        let f = scan(
            "crates/detlint/src/lib.rs",
            "detlint",
            "#![forbid(unsafe_code)]\nstd::thread::scope(|s| { let _ = s; });\n",
        );
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, RuleId::ThreadPrimitives);
        let ok = scan(
            "crates/detlint/src/lib.rs",
            "detlint",
            "#![forbid(unsafe_code)]\n// det: allow(parallel: path-ordered merge)\nstd::thread::scope(|s| { let _ = s; });\n",
        );
        assert!(ok.is_empty(), "{ok:?}");
    }

    #[test]
    fn thread_primitives_in_tests_are_out_of_scope() {
        let sf = src_file(
            "crates/simnet/tests/shard_equiv.rs",
            "simnet",
            FileKind::Tests,
            false,
        );
        let lexed = lex("let (tx, rx) = mpsc::channel();\n");
        let mut f = Vec::new();
        scan_file(&sf, &lexed, &mut f);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn use_alias_of_forbidden_names_is_chased_to_the_use_sites() {
        let f = scan(
            "crates/pubsub/src/forest.rs",
            "pubsub",
            "use std::collections::HashMap as Map;\nlet m: Map<u8, u8> = Map::new();\n",
        );
        // The rename site (HashMap token) plus both Map uses.
        let det001 = f
            .iter()
            .filter(|x| x.rule == RuleId::UnorderedCollections)
            .count();
        assert_eq!(det001, 3, "{f:?}");
        let f = scan(
            "crates/dht/src/node.rs",
            "dht",
            "use std::sync::Mutex as Lock;\nlet g = Lock::new(0);\n",
        );
        let det006: Vec<_> = f
            .iter()
            .filter(|x| x.rule == RuleId::ThreadPrimitives)
            .collect();
        assert_eq!(det006.len(), 2, "{f:?}");
        assert_eq!((det006[1].line, det006[1].col), (2, 9));
    }

    // ---- DET007 atomic-ordering ----

    #[test]
    fn relaxed_ordering_requires_a_written_proof() {
        let f = scan(
            "crates/simnet/src/shard.rs",
            "simnet",
            "use std::sync::atomic::{AtomicU64, Ordering};\nx.store(1, Ordering::Relaxed);\n",
        );
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, RuleId::AtomicOrdering);
        assert_eq!((f[0].line, f[0].col), (2, 12));
        let ok = scan(
            "crates/simnet/src/shard.rs",
            "simnet",
            "use std::sync::atomic::{AtomicU64, Ordering};\nx.store(1, Ordering::Relaxed); // det: allow(ordering: host-only counter, never read back into simulated state)\n",
        );
        assert!(ok.is_empty(), "{ok:?}");
    }

    #[test]
    fn atomic_call_without_ordering_is_flagged_seqcst_is_clean() {
        let f = scan(
            "crates/simnet/src/shard.rs",
            "simnet",
            "let a = AtomicU64::new(0);\nlet v = a.load();\n",
        );
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, RuleId::AtomicOrdering);
        assert_eq!(f[0].token, "load");
        let ok = scan(
            "crates/simnet/src/shard.rs",
            "simnet",
            "let a = AtomicU64::new(0);\nlet v = a.load(Ordering::SeqCst);\na.store(2, Ordering::SeqCst);\n",
        );
        assert!(ok.is_empty(), "{ok:?}");
    }

    #[test]
    fn slice_swap_in_atomic_free_file_is_not_an_atomic_op() {
        let ok = scan(
            "crates/simnet/src/sim.rs",
            "simnet",
            "v.swap(0, 1);\nlet x = q.load();\n",
        );
        assert!(ok.is_empty(), "{ok:?}");
    }

    #[test]
    fn relaxed_inside_cfg_test_is_exempt() {
        let ok = scan(
            "crates/simnet/src/shard.rs",
            "simnet",
            "#[cfg(test)]\nmod tests {\n    fn f() { x.store(1, Ordering::Relaxed); }\n}\n",
        );
        assert!(ok.is_empty(), "{ok:?}");
    }

    // ---- DET008 lock-discipline ----

    #[test]
    fn lock_outside_shard_runner_is_flagged_even_without_mutex_token() {
        let f = scan(
            "crates/dht/src/node.rs",
            "dht",
            "fn f(g: &SomeGuardable) { let v = g.lock(); }\n",
        );
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, RuleId::LockDiscipline);
        let ok = scan(
            "crates/dht/src/node.rs",
            "dht",
            "fn f(g: &SomeGuardable) { let v = g.lock(); } // det: allow(lock: host-side metrics sink)\n",
        );
        assert!(ok.is_empty(), "{ok:?}");
    }

    #[test]
    fn canonical_mailbox_acquisitions_in_shard_runner_are_clean() {
        let ok = scan(
            "crates/simnet/src/shard.rs",
            "simnet",
            "fn exchange() {\n    mailboxes[core.id][j].lock().unwrap().append(out);\n}\nfn drain() {\n    for row in mailboxes.iter() {\n        let mut inbox = row[core.id].lock().unwrap();\n        inbox.clear();\n    }\n}\n",
        );
        assert!(ok.is_empty(), "{ok:?}");
    }

    #[test]
    fn non_canonical_first_index_is_flagged_in_shard_runner() {
        let f = scan(
            "crates/simnet/src/shard.rs",
            "simnet",
            "fn exchange() {\n    mailboxes[j][core.id].lock().unwrap().append(out);\n}\n",
        );
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, RuleId::LockDiscipline);
        assert!(f[0].message.contains("first index `j`"), "{}", f[0].message);
    }

    #[test]
    fn unindexed_lock_in_shard_runner_is_flagged() {
        let f = scan(
            "crates/simnet/src/shard.rs",
            "simnet",
            "fn stray() { let g = extra.lock().unwrap(); }\n",
        );
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("un-indexed"), "{}", f[0].message);
    }

    #[test]
    fn nested_guard_scope_is_flagged_at_the_inner_lock() {
        let f = scan(
            "crates/simnet/src/shard.rs",
            "simnet",
            "fn nested() {\n    let a = mailboxes[core.id][j].lock().unwrap();\n    let b = mailboxes[core.id][k].lock().unwrap();\n}\n",
        );
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].line, 3);
        assert!(f[0].message.contains("nested"), "{}", f[0].message);
    }

    #[test]
    fn sequential_temporary_guards_do_not_nest() {
        let ok = scan(
            "crates/simnet/src/shard.rs",
            "simnet",
            "fn seq() {\n    mailboxes[core.id][j].lock().unwrap().append(a);\n    mailboxes[core.id][k].lock().unwrap().append(b);\n}\n",
        );
        assert!(ok.is_empty(), "{ok:?}");
    }

    // ---- DET009 float-determinism ----

    #[test]
    fn float_turbofish_sum_is_flagged() {
        let f = scan(
            "crates/ml/src/nn.rs",
            "ml",
            "fn f(xs: &[f32]) { let s = xs.iter().sum::<f32>(); }\n",
        );
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, RuleId::FloatDeterminism);
    }

    #[test]
    fn float_typed_let_sum_is_flagged_and_integer_sum_is_not() {
        let f = scan(
            "crates/ml/src/nn.rs",
            "ml",
            "fn f() {\n    let total: u64 = xs.iter().sum();\n    let s: f32 = exps.iter().sum();\n}\n",
        );
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].line, 3);
    }

    #[test]
    fn sum_in_float_returning_fn_is_flagged_via_item_tracker() {
        let f = scan(
            "crates/bandit/src/graph.rs",
            "bandit",
            "pub fn path_delay(&self, path: &[EdgeId]) -> f64 {\n    path.iter().map(|&e| self.expected_delay(e)).sum()\n}\n",
        );
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(
            f[0].message.contains("path_delay"),
            "message names the enclosing fn: {}",
            f[0].message
        );
    }

    #[test]
    fn float_seeded_fold_is_flagged_and_allow_float_suppresses() {
        let f = scan(
            "crates/ml/src/compress.rs",
            "ml",
            "fn m(v: &[f32]) { let max = v.iter().fold(0.0f32, |m, &x| m.max(x.abs())); }\n",
        );
        assert!(
            f.iter()
                .any(|x| x.rule == RuleId::FloatDeterminism && x.token == "fold"),
            "{f:?}"
        );
        let ok = scan(
            "crates/ml/src/compress.rs",
            "ml",
            "fn m(v: &[u32]) {\n    // det: allow(float: max is exactly commutative and associative)\n    let max = v.iter().fold(0.0f32, |m, &x| m.max(x.abs()));\n}\n",
        );
        assert!(ok.is_empty(), "{ok:?}");
    }

    #[test]
    fn integer_fold_and_usize_sums_are_not_flagged() {
        let ok = scan(
            "crates/simnet/src/geo.rs",
            "simnet",
            "fn f(regions: &[Region]) -> usize {\n    let full: usize = regions.iter().map(|r| r.count).sum();\n    let acc = xs.iter().fold(0u64, |a, b| a + b);\n    full\n}\n",
        );
        assert!(ok.is_empty(), "{ok:?}");
    }

    #[test]
    fn float_reduction_in_cfg_test_is_exempt() {
        let ok = scan(
            "crates/ml/src/nn.rs",
            "ml",
            "#[cfg(test)]\nmod tests {\n    fn f() { let s: f32 = p.iter().sum(); }\n}\n",
        );
        assert!(ok.is_empty(), "{ok:?}");
    }

    #[test]
    fn numeric_helper_module_is_sanctioned_for_det009() {
        let ok = scan(
            "crates/simnet/src/numeric.rs",
            "simnet",
            "pub fn sum_f64(xs: &[f64]) -> f64 { xs.iter().sum() }\n",
        );
        assert!(ok.is_empty(), "{ok:?}");
    }

    // ---- DET010 time-arithmetic ----

    #[test]
    fn unchecked_add_inside_from_micros_is_flagged() {
        let f = scan(
            "crates/bench/src/scenarios/fig13.rs",
            "bench",
            "fn f() { let t = SimTime::from_micros(t.as_micros() + step.as_micros()); }\n",
        );
        assert_eq!(f.len(), 1, "one finding per hazard line: {f:?}");
        assert_eq!(f[0].rule, RuleId::TimeArithmetic);
        assert_eq!(f[0].token, "from_micros");
    }

    #[test]
    fn subtraction_after_as_micros_is_flagged() {
        let f = scan(
            "crates/simnet/src/shard.rs",
            "simnet",
            "fn f() { let d = end.as_micros() - 1; }\n",
        );
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].token, "as_micros");
    }

    #[test]
    fn saturating_and_constant_time_arithmetic_are_clean() {
        let ok = scan(
            "crates/bench/src/scenarios/fig13.rs",
            "bench",
            "fn f() {\n    let t = SimTime::from_micros(t.as_micros().saturating_add(step.as_micros()));\n    let m = SimTime::from_micros(48 * 3_600 * 1_000_000);\n    let c = x.as_micros().saturating_sub(1);\n}\n",
        );
        assert!(ok.is_empty(), "{ok:?}");
    }

    #[test]
    fn closure_arrows_in_constructor_args_are_not_subtraction() {
        let ok = scan(
            "crates/simnet/src/chaos.rs",
            "simnet",
            "fn f() { let t = SimTime::from_micros(pick(|k| -> u64 { k })); }\n",
        );
        assert!(ok.is_empty(), "{ok:?}");
    }

    #[test]
    fn time_rs_is_the_sanctioned_home_of_raw_time_arithmetic() {
        let ok = scan(
            "crates/simnet/src/time.rs",
            "simnet",
            "fn f() { let d = a.as_micros() - b.as_micros(); }\n",
        );
        assert!(ok.is_empty(), "{ok:?}");
    }

    #[test]
    fn time_arithmetic_in_cfg_test_is_exempt() {
        let ok = scan(
            "crates/simnet/src/queue.rs",
            "simnet",
            "#[cfg(test)]\nmod tests {\n    fn f() { let t = SimTime::from_micros(span - 2); }\n}\n",
        );
        assert!(ok.is_empty(), "{ok:?}");
    }

    #[test]
    fn allow_time_with_proof_suppresses() {
        let ok = scan(
            "crates/simnet/src/shard.rs",
            "simnet",
            "fn f() {\n    // det: allow(time: end_us >= 1 is debug-asserted two lines up)\n    let bound = SimTime::from_micros(end_us - 1);\n}\n",
        );
        assert!(ok.is_empty(), "{ok:?}");
    }

    // ---- stale-allow usage tracking ----

    #[test]
    fn used_mask_distinguishes_live_and_stale_allows() {
        let (f, used) = scan_used(
            "crates/pubsub/src/forest.rs",
            "pubsub",
            "let m: HashMap<u8, u8> = x(); // det: allow(unordered: key-only)\nlet n = 1; // det: allow(unordered: nothing here to suppress)\n",
        );
        assert!(f.is_empty(), "{f:?}");
        assert_eq!(used, vec![true, false]);
    }

    #[test]
    fn malformed_allows_are_not_marked_used() {
        let (f, used) = scan_used(
            "crates/pubsub/src/forest.rs",
            "pubsub",
            "let m: HashMap<u8, u8> = x(); // det: allow(unordered)\n",
        );
        assert!(f.iter().any(|x| x.rule == RuleId::BadAnnotation));
        assert_eq!(used, vec![false]);
    }
}
