//! Diagnostic rendering: rustc-style text, machine-readable JSON, and
//! the `--list-allows` audit view.

use crate::rules::{Finding, ALL_RULES};
use crate::AllowRecord;

/// Renders one finding rustc-style:
///
/// ```text
/// error[DET001]: `HashMap` in a protocol crate: ...
///   --> crates/pubsub/src/forest.rs:135:20
/// ```
pub fn render_text(f: &Finding) -> String {
    format!(
        "error[{}]: {}\n  --> {}:{}:{}  ({})\n",
        f.rule.code(),
        f.message,
        f.file,
        f.line,
        f.col,
        f.rule.name()
    )
}

/// Renders one stale-suppression warning (exit-0 diagnostic class):
///
/// ```text
/// warning[stale-allow]: det: allow(unordered) suppresses nothing
///   --> crates/pubsub/src/forest.rs:135
/// ```
pub fn render_stale(r: &AllowRecord) -> String {
    format!(
        "warning[stale-allow]: det: allow({}) suppresses nothing — remove it or fix the \
         rule it was written for\n  --> {}:{}\n",
        r.allow.class, r.file, r.allow.line
    )
}

/// Renders the whole report as text: findings, then stale-allow
/// warnings, then a summary line.
pub fn render_report(findings: &[Finding], stale: &[&AllowRecord], files_scanned: usize) -> String {
    let mut out = String::new();
    for f in findings {
        out.push_str(&render_text(f));
    }
    for r in stale {
        out.push_str(&render_stale(r));
    }
    if findings.is_empty() {
        out.push_str(&format!(
            "detlint: {files_scanned} files scanned, no determinism violations"
        ));
    } else {
        out.push_str(&format!(
            "detlint: {} violation(s) in {files_scanned} files scanned",
            findings.len()
        ));
    }
    if !stale.is_empty() {
        out.push_str(&format!(", {} stale suppression(s)", stale.len()));
    }
    out.push('\n');
    out
}

/// Renders the report as JSON (hand-rolled; no serde in this crate):
/// `files_scanned`, a per-rule `rule_counts` summary block (every rule
/// code present, zero or not — CI greps for this key), the `violations`
/// array, and the `stale_allows` array.
pub fn render_json(findings: &[Finding], stale: &[&AllowRecord], files_scanned: usize) -> String {
    let mut out = String::from("{\n  \"files_scanned\": ");
    out.push_str(&files_scanned.to_string());
    out.push_str(",\n  \"rule_counts\": {");
    for (i, rule) in ALL_RULES.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let n = findings.iter().filter(|f| f.rule == *rule).count();
        out.push_str(&format!("\n    {}: {n}", json_str(rule.code())));
    }
    out.push_str("\n  },\n  \"violations\": [");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"rule\": {}, \"name\": {}, \"file\": {}, \"line\": {}, \"col\": {}, \
             \"token\": {}, \"message\": {}}}",
            json_str(f.rule.code()),
            json_str(f.rule.name()),
            json_str(&f.file),
            f.line,
            f.col,
            json_str(&f.token),
            json_str(&f.message),
        ));
    }
    if !findings.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("],\n  \"stale_allows\": [");
    for (i, r) in stale.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"file\": {}, \"line\": {}, \"class\": {}, \"reason\": {}}}",
            json_str(&r.file),
            r.allow.line,
            json_str(&r.allow.class),
            json_str(&r.allow.reason),
        ));
    }
    if !stale.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

/// Renders the `--list-allows` audit view: every suppression in the tree
/// with its reason, one line each, sorted by path; stale suppressions
/// carry a `[STALE]` mark.
pub fn render_allows(allows: &[AllowRecord]) -> String {
    let mut out = String::new();
    let mut stale = 0usize;
    for r in allows {
        let mark = if r.stale() {
            stale += 1;
            " [STALE]"
        } else {
            ""
        };
        out.push_str(&format!(
            "{}:{}: allow({}) — {}{mark}\n",
            r.file,
            r.allow.applies_to,
            r.allow.class,
            if r.allow.reason.is_empty() {
                "<MISSING REASON>"
            } else {
                &r.allow.reason
            }
        ));
    }
    out.push_str(&format!("{} suppression(s) in the tree", allows.len()));
    if stale > 0 {
        out.push_str(&format!(", {stale} STALE"));
    }
    out.push('\n');
    out
}

/// Minimal JSON string escaping.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::Allow;
    use crate::rules::RuleId;

    fn record(class: &str, reason: &str, used: bool) -> AllowRecord {
        AllowRecord {
            file: "crates/pubsub/src/forest.rs".into(),
            allow: Allow {
                line: 135,
                col: 1,
                applies_to: 135,
                class: class.into(),
                reason: reason.into(),
            },
            used,
        }
    }

    #[test]
    fn text_and_json_round_position_through() {
        let f = Finding {
            rule: RuleId::UnorderedCollections,
            file: "crates/pubsub/src/forest.rs".into(),
            line: 135,
            col: 20,
            token: "HashMap".into(),
            message: "msg with \"quotes\"".into(),
        };
        let text = render_text(&f);
        assert!(text.contains("error[DET001]"));
        assert!(text.contains("crates/pubsub/src/forest.rs:135:20"));
        let json = render_json(std::slice::from_ref(&f), &[], 7);
        assert!(json.contains("\"rule\": \"DET001\""));
        assert!(json.contains("\"line\": 135"));
        assert!(json.contains("msg with \\\"quotes\\\""));
        assert!(json.contains("\"files_scanned\": 7"));
    }

    #[test]
    fn empty_report_is_a_clean_summary() {
        let r = render_report(&[], &[], 42);
        assert!(r.contains("42 files scanned, no determinism violations"));
        let j = render_json(&[], &[], 42);
        assert!(j.contains("\"violations\": []"));
        assert!(j.contains("\"stale_allows\": []"));
    }

    #[test]
    fn rule_counts_block_names_all_ten_rules() {
        let f = Finding {
            rule: RuleId::TimeArithmetic,
            file: "crates/simnet/src/shard.rs".into(),
            line: 1,
            col: 1,
            token: "as_micros".into(),
            message: "m".into(),
        };
        let j = render_json(std::slice::from_ref(&f), &[], 3);
        for code in [
            "DET001", "DET002", "DET003", "DET004", "DET005", "DET006", "DET007", "DET008",
            "DET009", "DET010",
        ] {
            assert!(j.contains(&format!("\"{code}\": ")), "missing {code}: {j}");
        }
        assert!(j.contains("\"DET010\": 1"));
        assert!(j.contains("\"DET001\": 0"));
    }

    #[test]
    fn stale_allows_render_as_warnings_and_stale_marks() {
        let live = record("unordered", "key-only lookups", true);
        let stale = record("entropy", "old reason", false);
        let report = render_report(&[], &[&stale], 10);
        assert!(report.contains("warning[stale-allow]"));
        assert!(report.contains("1 stale suppression(s)"));
        let listing = render_allows(&[live, stale]);
        assert_eq!(listing.matches("[STALE]").count(), 1);
        assert!(listing.contains("2 suppression(s) in the tree, 1 STALE"));
        let no_reason = record("unordered", "", false);
        assert!(!no_reason.stale(), "malformed allows are DET005, not stale");
    }

    #[test]
    fn stale_allows_appear_in_json() {
        let stale = record("time", "obsolete proof", false);
        let j = render_json(&[], &[&stale], 5);
        assert!(j.contains("\"stale_allows\": ["));
        assert!(j.contains("\"class\": \"time\""));
        assert!(j.contains("\"reason\": \"obsolete proof\""));
    }
}
