//! Diagnostic rendering: rustc-style text, machine-readable JSON, and
//! the `--list-allows` audit view.

use crate::lexer::Allow;
use crate::rules::Finding;

/// Renders one finding rustc-style:
///
/// ```text
/// error[DET001]: `HashMap` in a protocol crate: ...
///   --> crates/pubsub/src/forest.rs:135:20
/// ```
pub fn render_text(f: &Finding) -> String {
    format!(
        "error[{}]: {}\n  --> {}:{}:{}  ({})\n",
        f.rule.code(),
        f.message,
        f.file,
        f.line,
        f.col,
        f.rule.name()
    )
}

/// Renders the whole report as text, ending with a summary line.
pub fn render_report(findings: &[Finding], files_scanned: usize) -> String {
    let mut out = String::new();
    for f in findings {
        out.push_str(&render_text(f));
    }
    if findings.is_empty() {
        out.push_str(&format!(
            "detlint: {files_scanned} files scanned, no determinism violations\n"
        ));
    } else {
        out.push_str(&format!(
            "detlint: {} violation(s) in {files_scanned} files scanned\n",
            findings.len()
        ));
    }
    out
}

/// Renders findings as a JSON array (hand-rolled; no serde in this crate).
pub fn render_json(findings: &[Finding], files_scanned: usize) -> String {
    let mut out = String::from("{\n  \"files_scanned\": ");
    out.push_str(&files_scanned.to_string());
    out.push_str(",\n  \"violations\": [");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"rule\": {}, \"name\": {}, \"file\": {}, \"line\": {}, \"col\": {}, \
             \"token\": {}, \"message\": {}}}",
            json_str(f.rule.code()),
            json_str(f.rule.name()),
            json_str(&f.file),
            f.line,
            f.col,
            json_str(&f.token),
            json_str(&f.message),
        ));
    }
    if !findings.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

/// Renders the `--list-allows` audit view: every suppression in the tree
/// with its reason, one line each, sorted by path.
pub fn render_allows(allows: &[(String, Allow)]) -> String {
    let mut out = String::new();
    for (file, a) in allows {
        out.push_str(&format!(
            "{file}:{}: allow({}) — {}\n",
            a.applies_to,
            a.class,
            if a.reason.is_empty() {
                "<MISSING REASON>"
            } else {
                &a.reason
            }
        ));
    }
    out.push_str(&format!("{} suppression(s) in the tree\n", allows.len()));
    out
}

/// Minimal JSON string escaping.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::RuleId;

    #[test]
    fn text_and_json_round_position_through() {
        let f = Finding {
            rule: RuleId::UnorderedCollections,
            file: "crates/pubsub/src/forest.rs".into(),
            line: 135,
            col: 20,
            token: "HashMap".into(),
            message: "msg with \"quotes\"".into(),
        };
        let text = render_text(&f);
        assert!(text.contains("error[DET001]"));
        assert!(text.contains("crates/pubsub/src/forest.rs:135:20"));
        let json = render_json(std::slice::from_ref(&f), 7);
        assert!(json.contains("\"rule\": \"DET001\""));
        assert!(json.contains("\"line\": 135"));
        assert!(json.contains("msg with \\\"quotes\\\""));
        assert!(json.contains("\"files_scanned\": 7"));
    }

    #[test]
    fn empty_report_is_a_clean_summary() {
        let r = render_report(&[], 42);
        assert!(r.contains("42 files scanned, no determinism violations"));
        let j = render_json(&[], 42);
        assert!(j.contains("\"violations\": []"));
    }
}
