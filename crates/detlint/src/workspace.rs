//! Workspace discovery: which `.rs` files exist and what role each plays.
//!
//! Hand-rolled `read_dir` walk — no globbing dependency — that mirrors the
//! workspace layout (`crates/*`, `tests/`, `examples/`, `vendor/*`). Build
//! artifacts (`target/`), VCS metadata, and the linter's own violation
//! fixtures (`**/tests/fixtures/**`, deliberate rule breaches used by
//! detlint's test suite) are excluded.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Where a file sits inside its crate, which decides rule applicability.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Hand-written crate code: `src/**` including `src/bin/`.
    Src,
    /// Integration tests: `tests/**`.
    Tests,
    /// Criterion benches: `benches/**`.
    Benches,
    /// Anything else (build scripts, etc.).
    Other,
}

/// One discovered source file.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Workspace-relative path with `/` separators (stable diagnostics).
    pub rel: String,
    /// Owning crate: `pubsub` for `crates/pubsub/**`, `tests` for the
    /// workspace test crate, `vendor/rand` for vendored stubs.
    pub crate_name: String,
    pub kind: FileKind,
    /// Whether this is a crate root (`src/lib.rs`), subject to DET004.
    pub is_crate_root: bool,
}

/// Directory names never descended into.
const SKIP_DIRS: &[&str] = &["target", ".git", "results", "node_modules"];

/// Finds the workspace root by walking up from `start` until a
/// `Cargo.toml` declaring `[workspace]` appears.
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

/// Walks `root` and returns every lintable `.rs` file, sorted by path so
/// diagnostics come out in a stable order on every filesystem.
pub fn discover(root: &Path) -> io::Result<Vec<SourceFile>> {
    let mut files = Vec::new();
    walk(root, root, &mut files)?;
    files.sort_by(|a, b| a.rel.cmp(&b.rel));
    Ok(files)
}

fn walk(root: &Path, dir: &Path, out: &mut Vec<SourceFile>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        let name = path
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or_default()
            .to_string();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_str()) || name.starts_with('.') {
                continue;
            }
            walk(root, &path, out)?;
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            if let Some(sf) = classify(&rel) {
                out.push(sf);
            }
        }
    }
    Ok(())
}

/// Maps a workspace-relative path to its crate and kind; `None` for
/// files outside the lint scope.
fn classify(rel: &str) -> Option<SourceFile> {
    // Deliberate-violation fixtures used by detlint's own tests.
    if rel.contains("/tests/fixtures/") {
        return None;
    }
    let parts: Vec<&str> = rel.split('/').collect();
    let (crate_name, rest): (String, &[&str]) = match parts.as_slice() {
        ["crates", c, rest @ ..] => ((*c).to_string(), rest),
        ["vendor", c, rest @ ..] => (format!("vendor/{c}"), rest),
        ["tests", rest @ ..] => ("tests".to_string(), rest),
        ["examples", rest @ ..] => ("examples".to_string(), rest),
        _ => return None,
    };
    let kind = match rest.first() {
        Some(&"src") => FileKind::Src,
        Some(&"tests") => FileKind::Tests,
        Some(&"benches") => FileKind::Benches,
        _ => FileKind::Other,
    };
    let is_crate_root = rest == ["src", "lib.rs"];
    Some(SourceFile {
        rel: rel.to_string(),
        crate_name,
        kind,
        is_crate_root,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_maps_crates_tests_examples_vendor() {
        let sf = classify("crates/pubsub/src/forest.rs").unwrap();
        assert_eq!(sf.crate_name, "pubsub");
        assert_eq!(sf.kind, FileKind::Src);
        assert!(!sf.is_crate_root);

        let sf = classify("crates/dht/src/lib.rs").unwrap();
        assert!(sf.is_crate_root);

        let sf = classify("crates/bench/tests/golden.rs").unwrap();
        assert_eq!(sf.kind, FileKind::Tests);

        let sf = classify("crates/bench/benches/sim_core.rs").unwrap();
        assert_eq!(sf.kind, FileKind::Benches);

        let sf = classify("tests/tests/full_stack.rs").unwrap();
        assert_eq!(sf.crate_name, "tests");
        assert_eq!(sf.kind, FileKind::Tests);

        let sf = classify("tests/src/lib.rs").unwrap();
        assert!(sf.is_crate_root);

        let sf = classify("vendor/rand/src/lib.rs").unwrap();
        assert_eq!(sf.crate_name, "vendor/rand");
        assert!(sf.is_crate_root);

        let sf = classify("examples/src/bin/quickstart.rs").unwrap();
        assert_eq!(sf.crate_name, "examples");
        assert_eq!(sf.kind, FileKind::Src);
    }

    #[test]
    fn fixture_trees_and_stray_files_are_excluded() {
        assert!(classify("crates/detlint/tests/fixtures/ws/crates/pubsub/src/lib.rs").is_none());
        assert!(classify("scripts/foo.rs").is_none());
        assert!(classify("build.rs").is_none());
    }
}
