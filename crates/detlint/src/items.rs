//! A lightweight item tracker over the masked token stream: which
//! `fn`/`impl`/`mod` a byte offset sits in, which item bodies carry
//! `#[cfg(test)]`, and which `use` declarations rename an import.
//!
//! This is *not* a parser — it is a brace/keyword walk over the
//! comment-and-string-free text produced by [`crate::lexer`], exact
//! enough for the rules that need context: the concurrency/numerics pack
//! (DET007–DET010) skips inline test modules, DET009 reads the enclosing
//! function's return type, and DET001/DET006 chase `use ... as` aliases
//! that would otherwise smuggle a forbidden name past a token match.

/// What kind of item a tracked body belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ItemKind {
    Mod,
    Fn,
    Impl,
    /// `struct`/`enum`/`trait`/`union` bodies — tracked so `#[cfg(test)]`
    /// attribution and brace accounting stay exact.
    Other,
}

/// One item with a braced body.
#[derive(Debug, Clone)]
pub struct Item {
    pub kind: ItemKind,
    /// Declared name (`tests`, `softmax`, the `impl` target type); empty
    /// when no identifier follows the keyword.
    pub name: String,
    /// For `Fn` items: the return-type text after the signature's `->`
    /// (whitespace included, empty when the function returns unit).
    pub ret: String,
    /// Byte offset of the body's opening `{`.
    pub body_start: usize,
    /// Byte offset one past the body's closing `}`.
    pub body_end: usize,
    /// Whether the item carries a `#[cfg(test)]` attribute.
    pub cfg_test: bool,
}

/// One `use path::to::Target as Alias` rename.
#[derive(Debug, Clone)]
pub struct UseAlias {
    /// The final path segment being renamed (`HashMap`, `Mutex`, ...).
    pub target: String,
    /// The local name it is bound to.
    pub alias: String,
    /// 1-based position of the alias identifier.
    pub line: u32,
    pub col: u32,
}

/// Item spans, test spans, and use aliases for one masked file.
#[derive(Debug, Default)]
pub struct ItemMap {
    pub items: Vec<Item>,
    pub aliases: Vec<UseAlias>,
}

impl ItemMap {
    /// Whether `at` sits inside any `#[cfg(test)]` item body.
    pub fn in_test(&self, at: usize) -> bool {
        self.items
            .iter()
            .any(|it| it.cfg_test && it.body_start <= at && at < it.body_end)
    }

    /// The innermost `fn` whose body contains `at`.
    pub fn enclosing_fn(&self, at: usize) -> Option<&Item> {
        self.items
            .iter()
            .filter(|it| it.kind == ItemKind::Fn && it.body_start <= at && at < it.body_end)
            .min_by_key(|it| it.body_end - it.body_start)
    }
}

fn is_ident_byte(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_'
}

struct Pending {
    kind: ItemKind,
    name: String,
    /// Byte offset right after the declared name (signature text start).
    sig_start: usize,
    cfg_test: bool,
}

/// Builds the item map for one masked file.
pub fn build(masked: &str) -> ItemMap {
    let b = masked.as_bytes();
    let mut map = ItemMap::default();
    // Stack of open braces: `Some(i)` when the brace opens item `i`'s
    // body, `None` for anonymous blocks (match arms, loops, closures).
    let mut stack: Vec<Option<usize>> = Vec::new();
    let mut pending: Option<Pending> = None;
    let mut cfg_test_pending = false;
    let mut i = 0usize;
    while i < b.len() {
        let c = b[i];
        // Attribute: `#[...]` / `#![...]`; detect `#[cfg(test)]`.
        if c == b'#' {
            let mut j = i + 1;
            if b.get(j) == Some(&b'!') {
                j += 1;
            }
            while j < b.len() && b[j].is_ascii_whitespace() {
                j += 1;
            }
            if b.get(j) == Some(&b'[') {
                let end = match_close(b, j, b'[', b']');
                let norm: String = masked[j + 1..end.saturating_sub(1)]
                    .chars()
                    .filter(|c| !c.is_whitespace())
                    .collect();
                if norm == "cfg(test)" {
                    cfg_test_pending = true;
                }
                i = end;
                continue;
            }
            i += 1;
            continue;
        }
        if is_ident_byte(c) && !c.is_ascii_digit() {
            let start = i;
            while i < b.len() && is_ident_byte(b[i]) {
                i += 1;
            }
            match &masked[start..i] {
                // A nested item keyword inside an unconsumed signature
                // (e.g. `fn` pointer types, `-> impl Trait`) must not
                // clobber the outer pending declaration.
                "fn" if pending.is_none() => {
                    let (name, after) = next_ident(masked, i);
                    pending = Some(Pending {
                        kind: ItemKind::Fn,
                        name,
                        sig_start: after,
                        cfg_test: std::mem::take(&mut cfg_test_pending),
                    });
                    i = after;
                }
                "mod" if pending.is_none() => {
                    let (name, after) = next_ident(masked, i);
                    pending = Some(Pending {
                        kind: ItemKind::Mod,
                        name,
                        sig_start: after,
                        cfg_test: std::mem::take(&mut cfg_test_pending),
                    });
                    i = after;
                }
                "impl" if pending.is_none() => {
                    pending = Some(Pending {
                        kind: ItemKind::Impl,
                        name: String::new(),
                        sig_start: i,
                        cfg_test: std::mem::take(&mut cfg_test_pending),
                    });
                }
                "struct" | "enum" | "trait" | "union" if pending.is_none() => {
                    let (name, after) = next_ident(masked, i);
                    pending = Some(Pending {
                        kind: ItemKind::Other,
                        name,
                        sig_start: after,
                        cfg_test: std::mem::take(&mut cfg_test_pending),
                    });
                    i = after;
                }
                "use" => {
                    cfg_test_pending = false;
                    let end = masked[i..].find(';').map(|p| i + p).unwrap_or(b.len());
                    harvest_aliases(masked, i, end, &mut map.aliases);
                    i = end;
                }
                _ => {}
            }
            continue;
        }
        match c {
            b'{' => {
                if let Some(p) = pending.take() {
                    let ret = if p.kind == ItemKind::Fn {
                        fn_return_type(&masked[p.sig_start..i])
                    } else {
                        String::new()
                    };
                    let name = if p.kind == ItemKind::Impl {
                        impl_target(&masked[p.sig_start..i])
                    } else {
                        p.name
                    };
                    map.items.push(Item {
                        kind: p.kind,
                        name,
                        ret,
                        body_start: i,
                        body_end: masked.len(),
                        cfg_test: p.cfg_test,
                    });
                    stack.push(Some(map.items.len() - 1));
                } else {
                    stack.push(None);
                }
            }
            b'}' => {
                if let Some(Some(idx)) = stack.pop() {
                    map.items[idx].body_end = i + 1;
                }
            }
            // A bodiless declaration (`mod x;`, trait fn, `const _: _;`)
            // discards both the pending item and any dangling attribute.
            b';' => {
                pending = None;
                cfg_test_pending = false;
            }
            _ => {}
        }
        i += 1;
    }
    // A `#[cfg(test)]` parent marks every nested body as test code too.
    propagate_cfg_test(&mut map.items);
    map
}

/// Marks items nested inside a `cfg_test` body as `cfg_test` themselves.
fn propagate_cfg_test(items: &mut [Item]) {
    let spans: Vec<(usize, usize)> = items
        .iter()
        .filter(|it| it.cfg_test)
        .map(|it| (it.body_start, it.body_end))
        .collect();
    for it in items.iter_mut() {
        if !it.cfg_test
            && spans
                .iter()
                .any(|&(s, e)| s < it.body_start && it.body_end <= e)
        {
            it.cfg_test = true;
        }
    }
}

/// Index one past the `]`/`)`/`}` matching the opener at `open`.
fn match_close(b: &[u8], open: usize, oc: u8, cc: u8) -> usize {
    let mut depth = 0usize;
    let mut i = open;
    while i < b.len() {
        if b[i] == oc {
            depth += 1;
        } else if b[i] == cc {
            depth -= 1;
            if depth == 0 {
                return i + 1;
            }
        }
        i += 1;
    }
    b.len()
}

/// The identifier following `from` (skipping whitespace), if any, and the
/// offset one past it.
fn next_ident(masked: &str, from: usize) -> (String, usize) {
    let b = masked.as_bytes();
    let mut i = from;
    while i < b.len() && b[i].is_ascii_whitespace() {
        i += 1;
    }
    let start = i;
    while i < b.len() && is_ident_byte(b[i]) {
        i += 1;
    }
    (masked[start..i].to_string(), i.max(from))
}

/// Return-type text of a signature: everything after the *last* `->`
/// (parameter-position `fn(..) -> T` pointer types rarely collide, and a
/// collision only risks over-reporting into a suppressible finding).
fn fn_return_type(sig: &str) -> String {
    match sig.rfind("->") {
        Some(p) => sig[p + 2..].trim().to_string(),
        None => String::new(),
    }
}

/// Best-effort `impl` target: the last identifier before the body (the
/// type name in both `impl Foo` and `impl Trait for Foo`), generics
/// stripped.
fn impl_target(sig: &str) -> String {
    let head = sig.split('<').next().unwrap_or(sig);
    sig.split_whitespace()
        .rfind(|w| w.chars().next().is_some_and(|c| c.is_alphabetic()))
        .map(|w| w.split('<').next().unwrap_or(w).to_string())
        .unwrap_or_else(|| head.trim().to_string())
}

/// Pulls every `Target as Alias` rename out of one `use` declaration
/// span. Inside a use decl the `as` keyword only ever renames, so a
/// whole-word scan is exact — casts can't appear there.
fn harvest_aliases(masked: &str, start: usize, end: usize, out: &mut Vec<UseAlias>) {
    let span = &masked[start..end];
    let mut from = 0usize;
    while let Some(p) = span[from..].find("as") {
        let at = from + p;
        from = at + 2;
        let bounded = (at == 0 || !is_ident_byte(span.as_bytes()[at - 1]))
            && !span[at + 2..].bytes().next().is_some_and(is_ident_byte);
        if !bounded {
            continue;
        }
        // Target: the identifier ending right before ` as `.
        let mut t_end = at;
        while t_end > 0 && span.as_bytes()[t_end - 1].is_ascii_whitespace() {
            t_end -= 1;
        }
        let mut t_start = t_end;
        while t_start > 0 && is_ident_byte(span.as_bytes()[t_start - 1]) {
            t_start -= 1;
        }
        // Alias: the identifier starting right after ` as `.
        let (alias, _) = next_ident(span, at + 2);
        if t_start == t_end || alias.is_empty() {
            continue;
        }
        let alias_off = start + at + 2 + span[at + 2..].len() - span[at + 2..].trim_start().len();
        let before = &masked[..alias_off];
        let line = before.matches('\n').count() as u32 + 1;
        let col = (alias_off - before.rfind('\n').map(|p| p + 1).unwrap_or(0)) as u32 + 1;
        out.push(UseAlias {
            target: masked[start + t_start..start + t_end].to_string(),
            alias,
            line,
            col,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn map(src: &str) -> ItemMap {
        build(&lex(src).masked)
    }

    #[test]
    fn fn_mod_impl_nesting_and_names() {
        let src =
            "mod outer {\n    impl Widget {\n        fn area(&self) -> f64 { 1.0 }\n    }\n}\n";
        let m = map(src);
        let kinds: Vec<(ItemKind, &str)> = m
            .items
            .iter()
            .map(|it| (it.kind, it.name.as_str()))
            .collect();
        assert!(kinds.contains(&(ItemKind::Mod, "outer")));
        assert!(kinds.contains(&(ItemKind::Impl, "Widget")));
        assert!(kinds.contains(&(ItemKind::Fn, "area")));
        let at = src.find("1.0").unwrap();
        let f = m.enclosing_fn(at).expect("inside area");
        assert_eq!(f.name, "area");
        assert_eq!(f.ret, "f64");
    }

    #[test]
    fn cfg_test_module_spans_are_detected_and_propagated() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn helper() { work(); }\n}\n";
        let m = map(src);
        assert!(!m.in_test(src.find("live").unwrap()));
        assert!(m.in_test(src.find("work").unwrap()));
        let helper = m
            .items
            .iter()
            .find(|it| it.name == "helper")
            .expect("helper tracked");
        assert!(helper.cfg_test, "nested items inherit cfg(test)");
    }

    #[test]
    fn cfg_test_fn_attribute_applies_to_that_fn_only() {
        let src = "#[cfg(test)]\nfn probe() { x(); }\nfn live() { y(); }\n";
        let m = map(src);
        assert!(m.in_test(src.find("x()").unwrap()));
        assert!(!m.in_test(src.find("y()").unwrap()));
    }

    #[test]
    fn dangling_cfg_test_is_discarded_at_semicolons_and_use() {
        let src = "#[cfg(test)]\nconst K: u32 = 1;\nfn live() { z(); }\n";
        let m = map(src);
        assert!(!m.in_test(src.find("z()").unwrap()));
        let src = "#[cfg(test)]\nuse std::fmt;\nfn live() { z(); }\n";
        let m = map(src);
        assert!(!m.in_test(src.find("z()").unwrap()));
    }

    #[test]
    fn cfg_all_is_not_cfg_test() {
        let src = "#[cfg(all(test, feature = \"x\"))]\nmod tests { fn f() { q(); } }\n";
        let m = map(src);
        assert!(!m.in_test(src.find("q()").unwrap()));
    }

    #[test]
    fn impl_trait_return_does_not_clobber_the_fn() {
        let src = "fn iter(&self) -> impl Iterator<Item = u32> { body() }\n";
        let m = map(src);
        let f = m.enclosing_fn(src.find("body").unwrap()).expect("fn");
        assert_eq!(f.name, "iter");
        assert!(f.ret.contains("impl Iterator"));
    }

    #[test]
    fn anonymous_blocks_do_not_leak_items() {
        let src = "fn f() -> u32 { match x { A { .. } => 1, _ => { 2 } } }\nfn g() { tail(); }\n";
        let m = map(src);
        let f = m.enclosing_fn(src.find("tail").unwrap()).expect("fn");
        assert_eq!(f.name, "g");
    }

    #[test]
    fn use_aliases_are_harvested_including_brace_groups() {
        let src = "use std::collections::HashMap as Map;\nuse std::sync::{Mutex as Lock, mpsc as chan};\nlet x = a as u64;\n";
        let m = map(src);
        let pairs: Vec<(&str, &str)> = m
            .aliases
            .iter()
            .map(|a| (a.target.as_str(), a.alias.as_str()))
            .collect();
        assert_eq!(
            pairs,
            vec![("HashMap", "Map"), ("Mutex", "Lock"), ("mpsc", "chan")],
            "casts outside use decls must not register"
        );
        assert_eq!((m.aliases[0].line, m.aliases[0].col), (1, 34));
    }

    #[test]
    fn trait_fn_declarations_without_bodies_are_skipped() {
        let src = "trait T {\n    fn decl(&self) -> f32;\n    fn with_body(&self) { b(); }\n}\n";
        let m = map(src);
        let f = m.enclosing_fn(src.find("b()").unwrap()).expect("fn");
        assert_eq!(f.name, "with_body");
        assert!(!m.items.iter().any(|it| it.name == "decl"));
    }
}
