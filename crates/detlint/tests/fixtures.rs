//! End-to-end rule checks against the deliberate-violation fixture tree
//! under `tests/fixtures/ws/` — one breach per rule site, plus decoys
//! (annotated sites, strings, comments, `#[cfg(test)]` bodies) that must
//! stay silent. Asserting the *exact* diagnostic set pins file, line,
//! and column reporting for all ten rules.

use std::path::Path;

use totoro_detlint::lint_root;

fn fixture_root() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("fixtures")
        .join("ws")
}

#[test]
fn fixture_tree_yields_exactly_one_violation_per_rule_site() {
    let report = lint_root(&fixture_root()).expect("fixture tree lints");
    let got: Vec<(String, String, u32, u32)> = report
        .findings
        .iter()
        .map(|f| (f.rule.code().to_string(), f.file.clone(), f.line, f.col))
        .collect();
    let want: Vec<(String, String, u32, u32)> = [
        ("DET009", "crates/bandit/src/stats.rs", 6, 15),
        ("DET003", "crates/bench/src/bin/run.rs", 4, 5),
        ("DET005", "crates/core/src/lib.rs", 6, 1),
        ("DET005", "crates/core/src/lib.rs", 8, 15),
        ("DET004", "crates/dht/src/lib.rs", 1, 1),
        ("DET008", "crates/pubsub/src/cache.rs", 6, 11),
        ("DET001", "crates/pubsub/src/lib.rs", 8, 17),
        ("DET007", "crates/simnet/src/atomics.rs", 20, 19),
        ("DET007", "crates/simnet/src/atomics.rs", 21, 18),
        ("DET010", "crates/simnet/src/clock.rs", 6, 14),
        ("DET006", "crates/simnet/src/runner.rs", 5, 18),
        ("DET008", "crates/simnet/src/shard.rs", 22, 35),
        ("DET002", "crates/simnet/src/sim.rs", 5, 17),
    ]
    .into_iter()
    .map(|(r, f, l, c)| (r.to_string(), f.to_string(), l, c))
    .collect();
    assert_eq!(got, want, "full diagnostic set:\n{:#?}", report.findings);
}

#[test]
fn fixture_decoy_suppressions_appear_in_the_allow_audit() {
    let report = lint_root(&fixture_root()).expect("fixture tree lints");
    // The valid suppressions (one per suppressible rule class) are
    // listed with their reasons; the malformed ones in core are listed
    // too — the audit view hides nothing.
    let classes: Vec<&str> = report
        .allows
        .iter()
        .map(|r| r.allow.class.as_str())
        .collect();
    for class in [
        "unordered",
        "entropy",
        "parallel",
        "ordering",
        "lock",
        "float",
        "time",
    ] {
        assert!(classes.contains(&class), "missing {class} in {classes:?}");
    }
    assert!(
        classes.contains(&"speed"),
        "malformed allows stay auditable"
    );
}

#[test]
fn exactly_the_stale_decoy_is_reported_stale() {
    let report = lint_root(&fixture_root()).expect("fixture tree lints");
    let stale: Vec<(String, u32)> = report
        .stale_allows()
        .iter()
        .map(|r| (r.file.clone(), r.allow.line))
        .collect();
    assert_eq!(
        stale,
        vec![("crates/simnet/src/atomics.rs".to_string(), 18)],
        "the deliberate stale allow (and only it) is surfaced"
    );
    // Malformed allows (unknown class, missing reason) are DET005
    // violations, never counted as stale.
    assert!(report
        .allows
        .iter()
        .filter(|r| r.file.contains("core"))
        .all(|r| !r.stale()));
}

#[test]
fn each_rule_fires_and_each_annotated_decoy_is_silent() {
    let report = lint_root(&fixture_root()).expect("fixture tree lints");
    let codes: Vec<&str> = report.findings.iter().map(|f| f.rule.code()).collect();
    for rule in [
        "DET001", "DET002", "DET003", "DET004", "DET005", "DET006", "DET007", "DET008", "DET009",
        "DET010",
    ] {
        assert!(codes.contains(&rule), "{rule} must fire on its fixture");
    }
    // The annotated HashMap in pubsub's `Good` struct (line 13), the
    // suppressed env::var in simnet/sim.rs (line 11), and the allowed
    // lock in pubsub/cache.rs (line 11) must not be flagged.
    assert!(
        !report
            .findings
            .iter()
            .any(|f| f.line == 13 && f.file.contains("pubsub")),
        "annotated decoy was flagged"
    );
    assert!(
        !report
            .findings
            .iter()
            .any(|f| f.line == 11 && (f.file.contains("sim.rs") || f.file.contains("cache.rs"))),
        "suppressed decoy was flagged"
    );
    // The sanctioned shard runner may use thread primitives; its only
    // finding is the deliberate nested-guard DET008 breach.
    assert!(report
        .findings
        .iter()
        .filter(|f| f.file.contains("shard.rs"))
        .all(|f| f.rule.code() == "DET008" && f.line == 22));
    // The allowed module may print.
    assert!(!report.findings.iter().any(|f| f.file.contains("report.rs")));
}
