//! Fixture: one deliberate DET006 violation (line 5). The mention of
//! thread::spawn in this comment must not be flagged.

pub fn bad_parallel() {
    let h = std::thread::spawn(|| {});
    h.join().unwrap();
}

pub fn good_parallel() {
    // det: allow(parallel: fixture decoy — lock guards host-only metrics)
    let m = Mutex::new(0u32);
    let _ = m;
}
