//! Fixture: the sanctioned shard-runner path — thread primitives here
//! are exempt from DET006 by file, not by annotation.

pub fn sanctioned() {
    std::thread::scope(|s| {
        let _ = s;
    });
    let _ = Mutex::new(0u32);
}
