//! Fixture: the sanctioned shard-runner path — thread primitives here
//! are exempt from DET006 by file, not by annotation, and `.lock()` is
//! audited by DET008's canonical-order/nested-guard analysis instead.

pub fn sanctioned() {
    std::thread::scope(|s| {
        let _ = s;
    });
    let _ = Mutex::new(0u32);
}

pub fn exchange(core: &Core, mailboxes: &Rows, out: Vec<u8>) {
    mailboxes[core.id][1].lock().unwrap().append(out);
    for row in mailboxes.iter() {
        let mut inbox = row[core.id].lock().unwrap();
        inbox.clear();
    }
}

pub fn nested(core: &Core, mailboxes: &Rows) {
    let a = mailboxes[core.id][0].lock().unwrap();
    let b = mailboxes[core.id][1].lock().unwrap();
    drop((a, b));
}
