//! Fixture: one deliberate DET002 violation (line 5). The commented call
//! below must not be flagged: // let t = Instant::now();

pub fn bad_clock() -> u64 {
    let start = Instant::now();
    start.elapsed().as_nanos() as u64
}

pub fn good_clock(now: u64) -> u64 {
    // det: allow(entropy: fixture decoy proving suppression works)
    let pid = std::env::var("FIXTURE").map(|v| v.len() as u64).unwrap_or(0);
    now + pid
}
