//! Fixture: DET007 atomic-ordering — one bare `Relaxed`, one atomic op
//! with no ordering; decoys are explicit-SeqCst ops, a proven allow, a
//! stale allow, and mentions inside comments/strings.

use std::sync::atomic::{AtomicU64, Ordering};

pub static GOOD: AtomicU64 = AtomicU64::new(0);

pub fn decoys() {
    GOOD.store(1, Ordering::SeqCst);
    let _ = GOOD.load(Ordering::SeqCst);
    // det: allow(ordering: fixture decoy — counter is never read back into simulated state)
    GOOD.store(2, Ordering::Relaxed);
    // A comment mentioning Ordering::Relaxed and .load() stays silent.
    let _ = "Ordering::Relaxed .store(3)";
}

// det: allow(ordering: stale fixture decoy — suppresses nothing on the next line)
pub fn violations() {
    GOOD.store(3, Ordering::Relaxed);
    let _ = GOOD.load();
}
