//! Fixture: DET010 time-arithmetic — one unchecked `+` on raw sim
//! micros; decoys are saturating arithmetic, a constant product, a
//! proven allow, and arithmetic inside `#[cfg(test)]`.

pub fn violation(t: SimTime, step: SimDuration) -> SimTime {
    SimTime::from_micros(t.as_micros() + step.as_micros())
}

pub fn decoys(t: SimTime) -> SimTime {
    let a = SimTime::from_micros(t.as_micros().saturating_add(5));
    let b = SimTime::from_micros(60 * 1_000_000);
    // det: allow(time: fixture decoy — lower bound 1 is debug-asserted by the caller)
    let c = SimTime::from_micros(t.as_micros() - 1);
    a.max(b).max(c)
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_time_math_is_exempt() {
        let _ = SimTime::from_micros(7 + 8);
    }
}
