//! Fixture: deliberate DET004 violation — this crate root is missing
//! `#![forbid(unsafe_code)]` (mentioning it in a comment must not count).

pub fn routing() {}
