//! Fixture: DET009 float-determinism — one float sum outside the
//! sanctioned numeric helpers; decoys are an integer sum, a proven
//! commutative fold, and a float sum inside `#[cfg(test)]`.

pub fn violation(xs: &[f64]) -> f64 {
    xs.iter().sum::<f64>()
}

pub fn decoys(xs: &[f64], ns: &[u64]) -> u64 {
    let count: u64 = ns.iter().sum();
    // det: allow(float: fixture decoy — max is exactly commutative and associative)
    let peak = xs.iter().fold(0.0f64, |m, &x| m.max(x));
    count + peak as u64
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_sums_are_exempt() {
        let s: f32 = [1.0f32, 2.0].iter().sum();
        assert!(s > 0.0);
    }
}
