//! Fixture: the allowed module — direct prints here are legal.

pub fn emit(text: &str) {
    print!("{text}");
}
