//! Fixture: one deliberate DET003 violation (line 4).

fn main() {
    println!("stdout is the golden surface");
    let msg = "println! inside a string is not a violation";
    let _ = msg;
}
