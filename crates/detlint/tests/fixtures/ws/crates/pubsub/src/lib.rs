//! Fixture: one deliberate DET001 violation (line 8), plus decoys that
//! must NOT be flagged: a properly annotated map, a HashMap in this very
//! comment, one in a raw string, and one in a plain string.

#![forbid(unsafe_code)]

pub struct Bad {
    pub timers: HashMap<u64, u64>,
}

pub struct Good {
    // det: allow(unordered: key-only lookups; never iterated)
    pub timers: HashMap<u64, u64>,
}

pub fn decoys() -> (&'static str, &'static str) {
    (r#"raw HashMap decoy"#, "string HashMap decoy")
}
