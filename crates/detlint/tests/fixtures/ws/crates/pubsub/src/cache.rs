//! Fixture: DET008 lock-discipline — a `.lock()` acquisition outside
//! the sanctioned shard runner, reached through a passed-in guardable
//! (no `Mutex` token in sight, so DET006 alone cannot catch it).

pub fn violation(slot: &SharedSlot) -> u32 {
    *slot.lock()
}

pub fn decoys(slot: &SharedSlot) -> u32 {
    // det: allow(lock: fixture decoy — host-side metrics sink, never orders simulated state)
    let v = *slot.lock();
    // A comment mentioning .lock() stays silent; so does a string.
    let s = "slot.lock()";
    v + s.len() as u32
}
