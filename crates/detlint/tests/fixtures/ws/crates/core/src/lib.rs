//! Fixture: two deliberate DET005 violations — an unknown allow class
//! (line 6) and a missing reason (line 8).

#![forbid(unsafe_code)]

// det: allow(speed: this class does not exist)
pub fn f() {}
pub fn g() {} // det: allow(unordered)
