//! The workspace self-lint: `cargo test` fails if any determinism rule
//! (DESIGN.md §11, §16) is violated anywhere in the live tree.
//!
//! This is the static half of the determinism contract — the golden
//! tests in `crates/bench/tests/golden.rs` catch a nondeterminism bug
//! *after* it skews output; this test rejects the code shape that breeds
//! such bugs before it ever runs. Every suppression must carry a written
//! reason (`totoro-detlint --list-allows` audits them; the current set is
//! committed to DESIGN.md §11), and every suppression must actually
//! suppress something — stale allows rot into false confidence.

use std::path::Path;

use totoro_detlint::{diag, lint_root};

/// `crates/detlint` → workspace root.
fn workspace_root() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/detlint sits two levels below the workspace root")
}

#[test]
fn workspace_has_no_determinism_violations() {
    let root = workspace_root();
    assert!(
        root.join("Cargo.toml").is_file(),
        "workspace root not found at {}",
        root.display()
    );
    let report = lint_root(root).expect("workspace lints");
    assert!(
        report.findings.is_empty(),
        "determinism violations in the workspace:\n{}",
        diag::render_report(
            &report.findings,
            &report.stale_allows(),
            report.files_scanned
        )
    );
    // Sanity: the walk actually saw the tree (all 8 protocol/bench crates
    // plus detlint, tests, examples, and the vendored stubs).
    assert!(
        report.files_scanned > 100,
        "only {} files scanned — discovery is broken",
        report.files_scanned
    );
}

#[test]
fn every_suppression_in_the_tree_carries_a_reason() {
    let report = lint_root(workspace_root()).expect("workspace lints");
    for r in &report.allows {
        assert!(
            !r.allow.reason.trim().is_empty(),
            "{}:{} det: allow({}) has no reason",
            r.file,
            r.allow.line,
            r.allow.class
        );
    }
    assert!(
        !report.allows.is_empty(),
        "the tree documents its known-safe sites via det: allow annotations"
    );
}

#[test]
fn no_suppression_in_the_tree_is_stale() {
    let report = lint_root(workspace_root()).expect("workspace lints");
    let stale: Vec<String> = report
        .stale_allows()
        .iter()
        .map(|r| format!("{}:{} allow({})", r.file, r.allow.line, r.allow.class))
        .collect();
    assert!(
        stale.is_empty(),
        "stale det: allow annotations (suppress nothing — remove or fix):\n{}",
        stale.join("\n")
    );
}
