//! Collection strategies (`prop::collection::{vec, btree_set}`).

use std::collections::BTreeSet;
use std::ops::Range;

use rand::rngs::StdRng;
use rand::Rng;

use crate::strategy::Strategy;

/// Lengths accepted by collection strategies: a fixed size or a range.
#[derive(Clone, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // exclusive
}

impl SizeRange {
    fn sample(&self, rng: &mut StdRng) -> usize {
        if self.lo + 1 >= self.hi {
            self.lo
        } else {
            rng.gen_range(self.lo..self.hi)
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        SizeRange {
            lo: r.start,
            hi: r.end.max(r.start + 1),
        }
    }
}

/// Strategy for `Vec<S::Value>`.
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let n = self.size.sample(rng);
        (0..n).map(|_| self.element.sample(rng)).collect()
    }
}

/// A vector of `size` elements drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy for `BTreeSet<S::Value>`.
#[derive(Clone, Debug)]
pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for BTreeSetStrategy<S>
where
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;

    fn sample(&self, rng: &mut StdRng) -> BTreeSet<S::Value> {
        let target = self.size.sample(rng);
        let mut set = BTreeSet::new();
        // Bounded attempts so a tiny element domain can't loop forever.
        for _ in 0..target.saturating_mul(4).max(16) {
            if set.len() >= target {
                break;
            }
            set.insert(self.element.sample(rng));
        }
        set
    }
}

/// A set of roughly `size` distinct elements drawn from `element`.
pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S::Value: Ord,
{
    BTreeSetStrategy {
        element,
        size: size.into(),
    }
}
