//! `any::<T>()` support.

use std::marker::PhantomData;

use rand::rngs::StdRng;
use rand::Rng;

use crate::strategy::Any;

/// Types with a canonical "anything goes" strategy.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> $t {
                rng.gen()
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize, bool);

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut StdRng) -> f32 {
        // Finite, sign-symmetric, wide dynamic range.
        let m: f32 = rng.gen::<f32>() * 2.0 - 1.0;
        let e: i32 = rng.gen_range(0u32..64) as i32 - 32;
        m * (2.0f32).powi(e)
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut StdRng) -> f64 {
        let m: f64 = rng.gen::<f64>() * 2.0 - 1.0;
        let e: i32 = rng.gen_range(0u32..128) as i32 - 64;
        m * (2.0f64).powi(e)
    }
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: PhantomData,
    }
}
