//! Per-case RNG derivation and error plumbing for the [`crate::proptest!`]
//! macro.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Error carried by `prop_assert*` back to the case loop.
#[derive(Clone, Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Builds a failure with a message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// Number of cases per property (env `PROPTEST_CASES`, default 48).
pub fn cases() -> u64 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(48)
}

/// Deterministic RNG for `(test, case)`: FNV-1a over the test path mixed
/// with the case index. Failures replay exactly.
pub fn case_rng(test_path: &str, case: u64) -> StdRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_path.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    StdRng::seed_from_u64(h ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15))
}
