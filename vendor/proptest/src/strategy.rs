//! Value-generation strategies.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::Rng;

/// A source of random values of one type.
///
/// The stand-in's contract is sampling only (no shrink trees): `sample`
/// must be a pure function of `(self, rng stream)`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Keeps only values for which `pred` holds (up to 100 rejections,
    /// then panics — matching real proptest's global rejection cap).
    fn prop_filter<F>(self, reason: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            reason,
            pred,
        }
    }

    /// Maps generated values through `f`.
    fn prop_map<F, U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn sample(&self, rng: &mut StdRng) -> S::Value {
        (**self).sample(rng)
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Clone, Debug)]
pub struct Filter<S, F> {
    inner: S,
    reason: &'static str,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn sample(&self, rng: &mut StdRng) -> S::Value {
        for _ in 0..100 {
            let v = self.inner.sample(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter rejected 100 consecutive values: {}",
            self.reason
        );
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn sample(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Numeric types whose ranges are strategies.
pub trait SampleNumber: Copy + PartialOrd {
    /// Uniform sample from `[lo, hi)`.
    fn sample_exclusive(lo: Self, hi: Self, rng: &mut StdRng) -> Self;
    /// Uniform sample from `[lo, hi]`.
    fn sample_inclusive(lo: Self, hi: Self, rng: &mut StdRng) -> Self;
}

macro_rules! impl_sample_number {
    ($($t:ty),*) => {$(
        impl SampleNumber for $t {
            fn sample_exclusive(lo: $t, hi: $t, rng: &mut StdRng) -> $t {
                rng.gen_range(lo..hi)
            }
            fn sample_inclusive(lo: $t, hi: $t, rng: &mut StdRng) -> $t {
                rng.gen_range(lo..=hi)
            }
        }
    )*};
}
impl_sample_number!(u8, u16, u32, u64, usize, f32, f64);

impl<T: SampleNumber> Strategy for Range<T> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        T::sample_exclusive(self.start, self.end, rng)
    }
}

impl<T: SampleNumber> Strategy for RangeInclusive<T> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        T::sample_inclusive(*self.start(), *self.end(), rng)
    }
}

/// String literals are regex strategies (character-class subset).
impl Strategy for &'static str {
    type Value = String;

    fn sample(&self, rng: &mut StdRng) -> String {
        crate::string::sample_pattern(self, rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);

/// Strategy produced by [`crate::arbitrary::any`].
#[derive(Clone, Debug, Default)]
pub struct Any<T> {
    pub(crate) _marker: PhantomData<T>,
}

impl<T: crate::arbitrary::Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}
