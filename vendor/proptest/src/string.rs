//! String-literal regex strategies.
//!
//! Real proptest treats `&str` strategies as full regexes. This stand-in
//! supports the subset the workspace uses — a sequence of character classes
//! with optional counts, e.g. `"[a-z]{0,16}"`, `"[a-z]{1,12}"` — and
//! panics loudly on anything it cannot parse so misuse is caught at test
//! time rather than silently mis-sampled.

use rand::rngs::StdRng;
use rand::Rng;

/// Samples a string matching `pattern`.
pub fn sample_pattern(pattern: &str, rng: &mut StdRng) -> String {
    let mut out = String::new();
    let mut chars = pattern.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            '[' => {
                // Parse the class body up to ']'.
                let mut ranges: Vec<(char, char)> = Vec::new();
                let mut body: Vec<char> = Vec::new();
                for d in chars.by_ref() {
                    if d == ']' {
                        break;
                    }
                    body.push(d);
                }
                let mut i = 0;
                while i < body.len() {
                    if i + 2 < body.len() && body[i + 1] == '-' {
                        ranges.push((body[i], body[i + 2]));
                        i += 3;
                    } else {
                        ranges.push((body[i], body[i]));
                        i += 1;
                    }
                }
                assert!(
                    !ranges.is_empty(),
                    "proptest stand-in: empty character class in {pattern:?}"
                );
                // Optional {m,n} / {n} counter.
                let (lo, hi) = if chars.peek() == Some(&'{') {
                    chars.next();
                    let mut spec = String::new();
                    for d in chars.by_ref() {
                        if d == '}' {
                            break;
                        }
                        spec.push(d);
                    }
                    let parts: Vec<&str> = spec.split(',').collect();
                    let parse = |s: &str| -> usize {
                        s.trim().parse().unwrap_or_else(|_| {
                            panic!("proptest stand-in: bad repeat count in {pattern:?}")
                        })
                    };
                    match parts.as_slice() {
                        [n] => (parse(n), parse(n)),
                        [m, n] => (parse(m), parse(n)),
                        _ => panic!("proptest stand-in: bad repeat spec in {pattern:?}"),
                    }
                } else {
                    (1, 1)
                };
                let count = if lo == hi { lo } else { rng.gen_range(lo..=hi) };
                for _ in 0..count {
                    let (a, b) = ranges[rng.gen_range(0..ranges.len())];
                    let (a, b) = (a as u32, b as u32);
                    let code = if a == b { a } else { rng.gen_range(a..=b) };
                    out.push(char::from_u32(code).unwrap_or('a'));
                }
            }
            // Literal characters outside classes pass through.
            _ => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn lowercase_class_with_counts() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..200 {
            let s = sample_pattern("[a-z]{0,16}", &mut rng);
            assert!(s.len() <= 16);
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
        }
        for _ in 0..200 {
            let s = sample_pattern("[a-z]{1,12}", &mut rng);
            assert!((1..=12).contains(&s.len()));
        }
    }

    #[test]
    fn literals_pass_through() {
        let mut rng = StdRng::seed_from_u64(2);
        assert_eq!(sample_pattern("abc", &mut rng), "abc");
    }
}
