//! Offline stand-in for `proptest`.
//!
//! Implements the strategy/macro subset the workspace's property tests use,
//! on top of the vendored deterministic `rand`:
//!
//! * the [`proptest!`] macro (multiple `fn name(pat in strategy, ...)` items,
//!   doc comments, `mut` bindings);
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assert_ne!`],
//!   [`prop_assume!`];
//! * strategies: integer/float ranges, `any::<T>()`, tuples, string
//!   literal character-class regexes (`"[a-z]{0,16}"`),
//!   `prop::collection::vec`, `prop::collection::btree_set`, `Just`,
//!   `.prop_filter(..)`, `.prop_map(..)`.
//!
//! Unlike real proptest there is no shrinking: a failing case panics with
//! the generated inputs' debug description (cases are reproducible — the
//! per-case RNG is derived from the test's module path, name, and case
//! index, so a failure always replays).

#![forbid(unsafe_code)]

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// `prop::` paths as the real crate exposes them (`prop::collection::vec`).
pub mod prop {
    pub use crate::collection;
}

/// Everything the tests import via `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::TestCaseError;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Defines deterministic property tests.
///
/// Each test body runs `PROPTEST_CASES` times (default 48) with inputs
/// sampled from its strategies; `prop_assert*` failures panic with the case
/// index so the exact inputs can be replayed.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cases = $crate::test_runner::cases();
                for __case in 0..__cases {
                    let mut __rng = $crate::test_runner::case_rng(
                        concat!(module_path!(), "::", stringify!($name)),
                        __case,
                    );
                    $(let $arg = $crate::strategy::Strategy::sample(&$strat, &mut __rng);)+
                    let __result: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                        (move || {
                            let _ = $body;
                            ::core::result::Result::Ok(())
                        })();
                    if let ::core::result::Result::Err(e) = __result {
                        panic!(
                            "proptest {} failed at case {}/{}: {}",
                            stringify!($name),
                            __case,
                            __cases,
                            e
                        );
                    }
                }
            }
        )+
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}: {}", stringify!($cond), format!($($fmt)+)),
            ));
        }
    };
}

/// Fails the current case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {:?} == {:?}", l, r),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {:?} == {:?}: {}", l, r, format!($($fmt)+)),
            ));
        }
    }};
}

/// Fails the current case unless the two expressions differ.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {:?} != {:?}", l, r),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {:?} != {:?}: {}", l, r, format!($($fmt)+)),
            ));
        }
    }};
}

/// Skips the current case (counts as a pass) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Ok(());
        }
    };
}
