//! Offline stand-in for the `bytes` crate.
//!
//! Implements the subset the workspace uses for model-weight serialization:
//! [`Bytes`], [`BytesMut`], [`Buf`] (little-endian getters), and [`BufMut`]
//! (little-endian putters). Backed by plain `Vec<u8>` — no shared-buffer
//! refcounting, which the simulator does not need.

#![forbid(unsafe_code)]

/// An immutable byte buffer with a read cursor.
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash)]
pub struct Bytes {
    data: Vec<u8>,
    pos: usize,
}

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Wraps a static byte slice (copied; this stand-in has no zero-copy).
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes {
            data: bytes.to_vec(),
            pos: 0,
        }
    }

    /// Unread bytes remaining.
    pub fn len(&self) -> usize {
        self.data.len() - self.pos
    }

    /// Whether no unread bytes remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The unread bytes as a slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.pos..]
    }

    /// Copies the unread bytes into a `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes { data, pos: 0 }
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Self {
        Bytes {
            data: data.to_vec(),
            pos: 0,
        }
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

/// A growable byte buffer.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// Creates an empty buffer with `capacity` bytes reserved.
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(capacity),
        }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Freezes into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes {
            data: self.data,
            pos: 0,
        }
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

/// Sequential reads from a byte buffer.
pub trait Buf {
    /// Unread bytes remaining.
    fn remaining(&self) -> usize;

    /// The unread bytes.
    fn chunk(&self) -> &[u8];

    /// Skips `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        b.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        b.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        u64::from_le_bytes(b)
    }

    /// Reads a little-endian `f32`.
    fn get_f32_le(&mut self) -> f32 {
        f32::from_bits(self.get_u32_le())
    }

    /// Reads a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end of buffer");
        self.pos += cnt;
    }
}

/// Sequential writes into a byte buffer.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f32`.
    fn put_f32_le(&mut self, v: f32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_le() {
        let mut buf = BytesMut::with_capacity(16);
        buf.put_u32_le(7);
        buf.put_f32_le(-1.5);
        buf.put_u8(9);
        let mut b = buf.freeze();
        assert_eq!(b.remaining(), 9);
        assert_eq!(b.get_u32_le(), 7);
        assert_eq!(b.get_f32_le(), -1.5);
        assert_eq!(b.get_u8(), 9);
        assert!(b.is_empty());
    }

    #[test]
    fn from_vec_and_static() {
        let b = Bytes::from(vec![1u8, 2, 3]);
        assert_eq!(b.len(), 3);
        let s = Bytes::from_static(&[4u8, 5]);
        assert_eq!(s.as_slice(), &[4, 5]);
    }
}
