//! Offline stand-in for `criterion`.
//!
//! Provides the API subset `benches/microbench.rs` uses — [`Criterion`],
//! [`BenchmarkId`], benchmark groups, `criterion_group!`/`criterion_main!` —
//! with a simple fixed-budget timing loop instead of criterion's full
//! statistical machinery. Each benchmark warms up briefly, then runs for a
//! small wall-clock budget and reports mean ns/iter on stdout.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Re-export for call sites that use `criterion::black_box`.
pub use std::hint::black_box;

const WARMUP: Duration = Duration::from_millis(20);
const BUDGET: Duration = Duration::from_millis(120);

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    total: Duration,
}

impl Bencher {
    /// Times `f` until the measurement budget is spent.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: run until WARMUP has elapsed.
        let warm_start = Instant::now();
        while warm_start.elapsed() < WARMUP {
            black_box(f());
        }
        // Measurement: batched timing until BUDGET is spent.
        let start = Instant::now();
        loop {
            let t0 = Instant::now();
            for _ in 0..8 {
                black_box(f());
            }
            self.total += t0.elapsed();
            self.iters += 8;
            if start.elapsed() >= BUDGET {
                break;
            }
        }
    }

    fn report(&self, name: &str) {
        if self.iters == 0 {
            println!("bench {name:<40} (no iterations)");
        } else {
            let ns = self.total.as_nanos() as f64 / self.iters as f64;
            println!("bench {name:<40} {ns:>14.1} ns/iter ({} iters)", self.iters);
        }
    }
}

/// Identifier for a parameterized benchmark.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stand-in's budget is fixed.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark with an input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            iters: 0,
            total: Duration::ZERO,
        };
        f(&mut b, input);
        b.report(&format!("{}/{}", self.name, id.name));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Top-level benchmark harness.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _criterion: self,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            iters: 0,
            total: Duration::ZERO,
        };
        f(&mut b);
        b.report(name);
        self
    }
}

/// Declares a group-runner function over benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running one or more groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
