//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! reimplements exactly the API subset the workspace uses: [`rngs::StdRng`],
//! [`SeedableRng`], [`Rng`] (`gen`, `gen_range`, `gen_bool`, `fill`), and
//! [`seq::SliceRandom`] (`choose`, `choose_multiple`, `shuffle`).
//!
//! The generator is xoshiro256** seeded through SplitMix64. It is *not*
//! the upstream ChaCha12-based `StdRng`, so streams differ from real
//! `rand 0.8` — but every consumer in this workspace only requires
//! determinism (same seed, same platform, same stream), which this core
//! guarantees: the implementation is pure integer arithmetic with no
//! platform-, thread-, or time-dependent state.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level uniform bit source.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64` via SplitMix64 expansion.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = splitmix64(&mut state).to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Types that can be sampled uniformly from an RNG's raw bits (the stand-in
/// for `rand`'s `Standard` distribution).
pub trait Standard: Sized {
    /// Samples one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_uint {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                let mut v: u128 = 0;
                let mut bits = 0;
                while bits < <$t>::BITS {
                    v = (v << 64) | u128::from(rng.next_u64());
                    bits += 64;
                }
                v as $t
            }
        }
    )*};
}
impl_standard_uint!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges that [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Samples a value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start + (u128::sample(rng) % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range: every value is valid.
                    return <$t as Standard>::sample(rng);
                }
                lo + (u128::sample(rng) % span) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                self.start + <$t as Standard>::sample(rng) * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                lo + <$t as Standard>::sample(rng) * (hi - lo)
            }
        }
    )*};
}
impl_sample_range_float!(f32, f64);

/// High-level sampling helpers, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of any [`Standard`]-samplable type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }

    /// Fills `dest` with random bytes.
    fn fill(&mut self, dest: &mut [u8])
    where
        Self: Sized,
    {
        self.fill_bytes(dest);
    }
}

impl<R: RngCore> Rng for R {}

/// Deterministic generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard RNG: xoshiro256**.
    ///
    /// Deterministic, seedable, `Clone` — streams depend only on the seed.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks(8).enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(chunk);
                s[i] = u64::from_le_bytes(b);
            }
            // An all-zero state would be a fixed point; nudge it.
            if s == [0; 4] {
                s = [
                    0x9e37_79b9_7f4a_7c15,
                    0xbf58_476d_1ce4_e5b9,
                    0x94d0_49bb_1331_11eb,
                    0x2545_f491_4f6c_dd1d,
                ];
            }
            StdRng { s }
        }
    }
}

/// Sequence-related sampling (`SliceRandom`).
pub mod seq {
    use super::{Rng, RngCore};

    /// Iterator over elements picked by [`SliceRandom::choose_multiple`].
    #[derive(Debug)]
    pub struct SliceChooseIter<'a, T> {
        items: std::vec::IntoIter<&'a T>,
    }

    impl<'a, T> Iterator for SliceChooseIter<'a, T> {
        type Item = &'a T;

        fn next(&mut self) -> Option<&'a T> {
            self.items.next()
        }

        fn size_hint(&self) -> (usize, Option<usize>) {
            self.items.size_hint()
        }
    }

    impl<T> ExactSizeIterator for SliceChooseIter<'_, T> {}

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Picks one element uniformly, or `None` if empty.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Picks `amount` distinct elements uniformly (all of them if
        /// `amount >= len`), in selection order.
        fn choose_multiple<R: RngCore>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> SliceChooseIter<'_, Self::Item>;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }

        fn choose_multiple<R: RngCore>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> SliceChooseIter<'_, T> {
            let amount = amount.min(self.len());
            // Partial Fisher–Yates over an index vector.
            let mut idx: Vec<usize> = (0..self.len()).collect();
            for i in 0..amount {
                let j = rng.gen_range(i..idx.len());
                idx.swap(i, j);
            }
            let picked: Vec<&T> = idx[..amount].iter().map(|&i| &self[i]).collect();
            SliceChooseIter {
                items: picked.into_iter(),
            }
        }

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let av: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let bv: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(av, bv);
    }

    #[test]
    fn gen_range_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1_000 {
            let x: usize = rng.gen_range(10..20);
            assert!((10..20).contains(&x));
            let y: u64 = rng.gen_range(5..=5);
            assert_eq!(y, 5);
            let f: f64 = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..1_000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            let g: f32 = rng.gen();
            assert!((0.0..1.0).contains(&g));
        }
    }

    #[test]
    fn choose_multiple_distinct() {
        let mut rng = StdRng::seed_from_u64(5);
        let xs: Vec<u32> = (0..100).collect();
        let picked: Vec<u32> = xs.choose_multiple(&mut rng, 10).copied().collect();
        assert_eq!(picked.len(), 10);
        let mut sorted = picked.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 10, "choose_multiple returned duplicates");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut xs: Vec<u32> = (0..50).collect();
        xs.shuffle(&mut rng);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
    }
}
