//! Offline stand-in for `serde_derive`.
//!
//! The workspace annotates many plain-data types with
//! `#[derive(Serialize, Deserialize)]` but never actually serializes them
//! through a serde data format (no `serde_json` or similar is in the
//! dependency tree — benchmark reports use their own deterministic JSON
//! writer). The vendored `serde` crate's traits are blanket-implemented, so
//! these derives only need to *exist and parse*; they expand to nothing.

#![forbid(unsafe_code)]

use proc_macro::TokenStream;

/// Accepts and discards a `#[derive(Serialize)]` invocation.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts and discards a `#[derive(Deserialize)]` invocation.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
