//! Offline stand-in for `serde`.
//!
//! The workspace derives `Serialize`/`Deserialize` on plain-data types for
//! forward compatibility but contains no serde data format (benchmark
//! reports are serialized through their own deterministic JSON writer).
//! This stand-in keeps those annotations compiling without the real crate:
//! the traits are markers with blanket implementations, and the derive
//! macros (re-exported from the vendored `serde_derive`) expand to nothing.

#![forbid(unsafe_code)]

// The derive macros live in the macro namespace, the traits in the type
// namespace, so the same names can be re-exported side by side — exactly as
// the real serde does.
pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`; every type satisfies it.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize<'de>`; every type satisfies it.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

/// Marker stand-in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T> DeserializeOwned for T {}

/// Stand-in for serde's `de` module.
pub mod de {
    pub use crate::{Deserialize, DeserializeOwned};
}

/// Stand-in for serde's `ser` module.
pub mod ser {
    pub use crate::Serialize;
}
