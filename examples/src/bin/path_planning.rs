//! The §5 bandit path planner on an unreliable edge network.
//!
//! Link qualities are unknown; transmitting a packet reveals (semi-bandit)
//! feedback about the links it tried. The example routes a stream of
//! gradient packets with Totoro's hop-by-hop KL-UCB planner and compares
//! the realized delays with end-to-end LCB routing, greedy next-hop
//! routing, and the omniscient optimum.
//!
//! ```text
//! cargo run --release -p totoro-examples --bin path_planning
//! ```

use totoro::bandit::{layered, ranked_paths, run_trial, trap_graph, Policy};
use totoro::simnet::sub_rng;

fn main() {
    let packets = 1_500;

    println!("== scenario 1: deceptive first link (the §7.5 trap) ==");
    let (g, s, d) = trap_graph();
    describe(&g, s, d);
    compare(&g, s, d, packets, 1);

    println!("\n== scenario 2: random 3x3 layered edge network ==");
    let mut rng = sub_rng(99, "graph");
    let (g, s, d) = layered(3, 3, (0.15, 0.95), &mut rng);
    describe(&g, s, d);
    compare(&g, s, d, packets, 2);
}

fn describe(g: &totoro::bandit::LinkGraph, s: usize, d: usize) {
    let ranked = ranked_paths(g, s, d);
    println!(
        "{} vertices, {} unreliable links, {} loop-free paths",
        g.num_vertices(),
        g.num_edges(),
        ranked.len()
    );
    let (best, delay) = g.best_path(s, d).expect("connected");
    println!("optimal path {best:?} with expected delay {delay:.2} slots");
}

fn compare(g: &totoro::bandit::LinkGraph, s: usize, d: usize, packets: usize, seed: u64) {
    println!("\npolicy                 mean delay   final regret   optimal-path share (last 20%)");
    for policy in [
        Policy::HopByHopKlUcb,
        Policy::EndToEndLcb,
        Policy::NextHopEmpirical,
        Policy::Oracle,
    ] {
        let mut rng = rand::SeedableRng::seed_from_u64(seed);
        let trial = run_trial(g, s, d, policy, packets, &mut rng);
        let mean_delay = trial.per_packet_delay.iter().sum::<u64>() as f64 / packets as f64;
        println!(
            "{:<22} {:>9.2}   {:>12.1}   {:>6.1}%",
            policy.name(),
            mean_delay,
            trial.final_regret(),
            trial.optimal_rate_tail(packets / 5) * 100.0
        );
    }
}
