//! Quickstart: train one federated model on a simulated edge network.
//!
//! ```text
//! cargo run --release -p totoro-examples --bin quickstart
//! ```
//!
//! What happens:
//! 1. 32 edge nodes self-organize into a Pastry-style DHT overlay.
//! 2. One FL application is submitted; every node `Subscribe`s to its
//!    AppId, and the union of the JOIN paths forms the dataflow tree. The
//!    rendezvous node is promoted to the application's master.
//! 3. The master `Broadcast`s the model down the tree each round; workers
//!    train on their local (non-IID) shards; updates aggregate in-network
//!    back up to the master (FedAvg) until the target accuracy is reached.

use std::sync::Arc;

use totoro::dht::DhtConfig;
use totoro::ml::{speech_commands_like, TaskGenerator};
use totoro::pubsub::ForestConfig;
use totoro::simnet::{sub_rng, SimTime, Topology};
use totoro::{FlAppConfig, TotoroDeployment};

fn main() {
    let n = 32;
    let seed = 42;

    // 1. The edge network: 32 nodes, 1-5 ms one-way latencies.
    let topology = Topology::uniform(n, 1_000, 5_000);
    let mut deploy = TotoroDeployment::new(
        topology,
        seed,
        DhtConfig::default(),
        ForestConfig::default(),
    );
    println!("overlay up: {} nodes", deploy.len());

    // 2. The learning task: a 35-class synthetic classification problem
    //    (the "speech"-scale task), non-IID across clients (Dirichlet
    //    label skew).
    let mut rng = sub_rng(seed, "task");
    let generator = TaskGenerator::new(speech_commands_like(), &mut rng);
    let shards = generator.client_shards(n, 50, 0.5, &mut rng);
    let test_set = Arc::new(generator.test_set(300, &mut rng));

    let dims = vec![generator.spec.dim, 48, generator.spec.classes];
    let mut config = FlAppConfig::new("quickstart-app", dims, test_set);
    config.target_accuracy = 0.53; // The paper's speech target (Table 3).
    config.max_rounds = 40;
    config.lr = 0.1;

    let participants: Vec<usize> = (0..n).collect();
    let app = deploy.submit_app(config, &participants, shards);

    // 3. Run until the target is reached.
    let finished = deploy.run(SimTime::from_micros(3_600 * 1_000_000));
    let master = deploy.master_of(app).expect("a master was promoted");
    println!("master: node {master} (the node whose id is closest to the AppId)");
    println!("\nround  sim-time  accuracy");
    for p in deploy.curve(app) {
        println!("{:>5}  {:>7.1}s  {:.3}", p.round, p.time_secs, p.accuracy);
    }
    match (finished, deploy.time_to_target(app)) {
        (true, Some(t)) => println!("\nreached 53% test accuracy after {t:.1}s of simulated time"),
        _ => println!("\ndid not reach the target within the budget"),
    }
}
