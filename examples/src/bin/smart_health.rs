//! The paper's motivating Smart Health scenario (§1, Figure 1): wearable
//! devices feed several *concurrent* FL applications — activity
//! recognition, fitness tracking, and abnormal-health detection — each
//! with its own policies, all running on the same edge nodes with a
//! dedicated per-application master.
//!
//! ```text
//! cargo run --release -p totoro-examples --bin smart_health
//! ```

use std::sync::Arc;

use totoro::dht::DhtConfig;
use totoro::ml::{
    femnist_like, text_classification_like, AggregationRule, Compression, Privacy, TaskGenerator,
};
use totoro::pubsub::ForestConfig;
use totoro::simnet::{sub_rng, SimTime, Topology};
use totoro::{FlAppConfig, SelectionPolicy, TotoroDeployment};

fn main() {
    let n = 48;
    let seed = 7;
    let topology = Topology::uniform(n, 1_000, 8_000);
    let mut deploy = TotoroDeployment::new(
        topology,
        seed,
        DhtConfig::default(),
        ForestConfig::default(),
    );
    let mut rng = sub_rng(seed, "tasks");

    // Three applications over the same wearables, each with its own FL
    // policy (Table 2's application-specific customization).
    let mut apps = Vec::new();

    // 1. Activity recognition: plain FedAvg over everyone.
    let act = TaskGenerator::new(text_classification_like(), &mut rng);
    let mut cfg = FlAppConfig::new(
        "activity-recognition",
        vec![act.spec.dim, 32, act.spec.classes],
        Arc::new(act.test_set(300, &mut rng)),
    );
    cfg.target_accuracy = 0.85;
    cfg.max_rounds = 30;
    let shards = act.client_shards(n, 40, 0.5, &mut rng);
    apps.push((
        "activity-recognition",
        deploy.submit_app(cfg, &(0..n).collect::<Vec<_>>(), shards),
    ));

    // 2. Fitness tracking: only 50% of devices selected per round, and
    //    int8-compressed uploads (battery-friendly).
    let fit = TaskGenerator::new(text_classification_like(), &mut rng);
    let mut cfg = FlAppConfig::new(
        "fitness-tracking",
        vec![fit.spec.dim, 32, fit.spec.classes],
        Arc::new(fit.test_set(300, &mut rng)),
    );
    cfg.selection = SelectionPolicy::Fraction(0.5);
    cfg.compression = Compression::Int8;
    cfg.target_accuracy = 0.85;
    cfg.max_rounds = 30;
    cfg.salt = 1;
    let shards = fit.client_shards(n, 40, 0.5, &mut rng);
    apps.push((
        "fitness-tracking",
        deploy.submit_app(cfg, &(0..n).collect::<Vec<_>>(), shards),
    ));

    // 3. Abnormal-health detection: highly skewed medical data, so FedProx
    //    for stability plus Gaussian differential privacy on the updates.
    let med = TaskGenerator::new(femnist_like(), &mut rng);
    let mut cfg = FlAppConfig::new(
        "abnormal-health-detection",
        vec![med.spec.dim, 48, med.spec.classes],
        Arc::new(med.test_set(300, &mut rng)),
    );
    cfg.aggregation = AggregationRule::FedProx { mu: 0.05 };
    cfg.privacy = Privacy::GaussianDp {
        clip: 80.0,
        sigma: 0.0005,
    };
    cfg.target_accuracy = 0.70;
    cfg.max_rounds = 40;
    cfg.salt = 2;
    let shards = med.client_shards(n, 50, 0.1, &mut rng);
    apps.push((
        "abnormal-health-detection",
        deploy.submit_app(cfg, &(0..n).collect::<Vec<_>>(), shards),
    ));

    deploy.run(SimTime::from_micros(7_200 * 1_000_000));

    println!("application                     master  rounds  best acc  time-to-target");
    for (name, app) in &apps {
        let curve = deploy.curve(*app);
        let best = curve.iter().map(|p| p.accuracy).fold(0.0, f64::max);
        let rounds = curve.last().map_or(0, |p| p.round);
        let master = deploy.master_of(*app).map_or("-".into(), |m| m.to_string());
        let ttt = deploy
            .time_to_target(*app)
            .map_or("-".into(), |t| format!("{t:.0}s"));
        println!("{name:<30}  {master:>6}  {rounds:>6}  {best:>8.3}  {ttt:>14}");
    }

    // Every node wears several hats at once: master for one app, aggregator
    // or worker for the others — the "many masters / many workers" design.
    let topics: Vec<_> = apps
        .iter()
        .map(|(_, a)| deploy.config(*a).app_id())
        .collect();
    let roles = totoro::role_census(deploy.sim(), &topics);
    let multi_role = roles
        .iter()
        .filter(|r| (r.master + r.aggregator > 0) && r.worker > 0)
        .count();
    println!(
        "\n{multi_role}/{n} nodes simultaneously serve as master/aggregator for one app and worker for another"
    );
}
