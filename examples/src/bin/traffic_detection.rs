//! The multi-ring scenario from §4.2/§4.4: a road-traffic detection
//! application needs data from several geographic zones, while a medical
//! application must stay confined to its home edge site (administrative
//! isolation).
//!
//! The example builds an EUA-shaped geographic topology, bins nodes into
//! edge zones with distributed binning, composes zone-prefixed NodeIds
//! (the locality-aware multi-ring structure), and then shows that a
//! zone-restricted application's packets are blocked at the boundary while
//! the cross-zone application spans rings.
//!
//! ```text
//! cargo run --release -p totoro-examples --bin traffic_detection
//! ```

use std::sync::Arc;

use totoro::dht::{ids_for_zones, DhtConfig};
use totoro::ml::{text_classification_like, TaskGenerator};
use totoro::pubsub::ForestConfig;
use totoro::simnet::geo::{eua_regions_scaled, generate};
use totoro::simnet::{assign_zones, sub_rng, BinningConfig, LatencyModel, SimTime, Topology};
use totoro::{FlAppConfig, TotoroDeployment};

fn main() {
    let seed = 11;
    let zone_bits = 4;

    // A geographic edge network shaped like the EUA dataset.
    let mut rng = sub_rng(seed, "geo");
    let nodes = generate(&eua_regions_scaled(160), &mut rng);
    let topology = Topology::from_placements(
        &nodes,
        LatencyModel::Geo {
            base_us: 500,
            per_km_us: 5.0,
        },
    );
    let n = topology.len();

    // Distributed binning forms the edge zones (Fig. 5a).
    let zones = assign_zones(
        &topology,
        &BinningConfig {
            num_landmarks: 4,
            level_boundaries_us: vec![4_000, 12_000, 30_000],
            max_zones: 8,
        },
        &mut rng,
    );
    println!(
        "binned {n} nodes into {} zones: sizes {:?}",
        zones.num_zones,
        zones.zone_sizes()
    );

    // NodeIds carry the zone prefix: D = P * 2^n + S (§4.2).
    let ids = ids_for_zones(&zones.zone_of, zone_bits, &mut rng);
    let dht_config = DhtConfig {
        zone_bits,
        ..DhtConfig::default()
    };

    // The medical app is zone-restricted; the traffic app is not.
    let restricted_forest = ForestConfig {
        zone_restricted: true,
        ..ForestConfig::default()
    };
    let home_zone: u16 = 0;
    let home_members = zones.members(home_zone);

    // --- Zone-restricted medical application ------------------------------
    let mut deploy = TotoroDeployment::with_ids(
        topology.clone(),
        seed,
        dht_config,
        restricted_forest,
        ids.clone(),
    );
    let generator = TaskGenerator::new(text_classification_like(), &mut rng);
    let mut cfg = FlAppConfig::new(
        "regional-disease-model",
        vec![generator.spec.dim, 32, generator.spec.classes],
        Arc::new(generator.test_set(200, &mut rng)),
    );
    cfg.zone_restricted = true;
    cfg.max_rounds = 10;
    cfg.target_accuracy = 2.0;
    // Key the app into the home zone so its rendezvous stays local.
    cfg.home_zone = Some((u64::from(home_zone), zone_bits));
    let shards = generator.client_shards(home_members.len(), 40, 0.5, &mut rng);
    let app = deploy.submit_app(cfg, &home_members, shards);
    deploy.run(SimTime::from_micros(600 * 1_000_000));

    let blocked: u64 = (0..n).map(|i| deploy.sim().app(i).stats.blocked).sum();
    let curve = deploy.curve(app);
    println!(
        "\n[restricted medical app] rounds completed: {}, packets blocked at zone boundaries: {blocked}",
        curve.last().map_or(0, |p| p.round),
    );
    // All tree members stay in the home zone.
    let topic = deploy.config(app).app_id();
    let foreign_members = (0..n)
        .filter(|&i| {
            zones.zone_of[i] != home_zone
                && deploy
                    .sim()
                    .app(i)
                    .upper
                    .state
                    .membership(topic)
                    .is_some_and(|m| m.attached())
        })
        .count();
    println!("[restricted medical app] tree members outside the home zone: {foreign_members}");

    // --- Cross-zone road-traffic application -------------------------------
    let mut deploy =
        TotoroDeployment::with_ids(topology, seed + 1, dht_config, ForestConfig::default(), ids);
    let mut cfg = FlAppConfig::new(
        "road-traffic-detection",
        vec![generator.spec.dim, 32, generator.spec.classes],
        Arc::new(generator.test_set(200, &mut rng)),
    );
    cfg.max_rounds = 10;
    cfg.target_accuracy = 2.0;
    let participants: Vec<usize> = (0..n).collect();
    let shards = generator.client_shards(n, 40, 0.5, &mut rng);
    let app = deploy.submit_app(cfg, &participants, shards);
    deploy.run(SimTime::from_micros(600 * 1_000_000));

    let topic = deploy.config(app).app_id();
    let mut zones_spanned: Vec<u16> = (0..n)
        .filter(|&i| {
            deploy
                .sim()
                .app(i)
                .upper
                .state
                .membership(topic)
                .is_some_and(|m| m.attached())
        })
        .map(|i| zones.zone_of[i])
        .collect();
    zones_spanned.sort_unstable();
    zones_spanned.dedup();
    println!(
        "\n[cross-zone traffic app] rounds completed: {}, tree spans {} of {} zones",
        deploy.curve(app).last().map_or(0, |p| p.round),
        zones_spanned.len(),
        zones.num_zones
    );
}
