//! Training through churn (§4.5): nodes keep failing and reviving while an
//! FL application trains; the dataflow tree repairs itself via keep-alive
//! detection and re-JOINs, and even the application's master can die and
//! be replaced by a newly promoted rendezvous node.
//!
//! ```text
//! cargo run --release -p totoro-examples --bin churn_resilience
//! ```

use std::sync::Arc;

use totoro::dht::DhtConfig;
use totoro::ml::{text_classification_like, TaskGenerator};
use totoro::pubsub::ForestConfig;
use totoro::simnet::{sub_rng, ChurnSchedule, SimDuration, SimTime, Topology};
use totoro::{FlAppConfig, TotoroDeployment};

fn main() {
    let n = 40;
    let seed = 21;
    let topology = Topology::uniform(n, 1_000, 6_000);
    let mut deploy = TotoroDeployment::new(
        topology,
        seed,
        DhtConfig::default(),
        ForestConfig {
            tick: SimDuration::from_millis(500),
            ..ForestConfig::default()
        },
    );

    let mut rng = sub_rng(seed, "task");
    let generator = TaskGenerator::new(text_classification_like(), &mut rng);
    let shards = generator.client_shards(n, 40, 0.5, &mut rng);
    let mut cfg = FlAppConfig::new(
        "resilient-app",
        vec![generator.spec.dim, 32, generator.spec.classes],
        Arc::new(generator.test_set(300, &mut rng)),
    );
    cfg.target_accuracy = 2.0; // Run a fixed number of rounds.
    cfg.max_rounds = 40;
    cfg.round_pause = SimDuration::from_secs(3); // ~2 min of training.
    cfg.round_timeout = SimDuration::from_secs(20);
    let app = deploy.submit_app(cfg, &(0..n).collect::<Vec<_>>(), shards);

    // Find the master first so the churn schedule can spare it: the master
    // gets killed permanently below to demonstrate takeover.
    deploy.run(SimTime::from_micros(20 * 1_000_000));
    let original_master = deploy.master_of(app).expect("master exists");

    // Continuous churn over everyone else: every ~4 s some node goes down
    // for ~10 s.
    let members: Vec<usize> = (0..n).filter(|&i| i != original_master).collect();
    let churn = ChurnSchedule::continuous(
        &members,
        SimTime::from_micros(26 * 1_000_000),
        SimTime::from_micros(250 * 1_000_000),
        SimDuration::from_secs(4),
        SimDuration::from_secs(10),
        &mut rng,
    );
    println!(
        "churn schedule: {} outages over 224s affecting {} distinct nodes",
        churn.events().len() / 2,
        churn.nodes_affected()
    );
    churn.apply(deploy.sim_mut());

    // Kill the original master outright mid-run (it never comes back).
    println!("original master: node {original_master} — killing it at t=25s");
    deploy
        .sim_mut()
        .schedule_down(original_master, SimTime::from_micros(25 * 1_000_000));

    deploy.run(SimTime::from_micros(600 * 1_000_000));

    let curve = deploy.curve(app);
    let rounds = curve.last().map_or(0, |p| p.round);
    let best = curve.iter().map(|p| p.accuracy).fold(0.0, f64::max);
    let new_master = deploy.master_of(app);
    println!("\nrounds completed despite churn: {rounds}");
    println!("best accuracy reached: {best:.3}");
    println!("current master: {new_master:?} (was {original_master})");
    assert_ne!(new_master, Some(original_master), "takeover did not happen");

    // Count repair episodes across the deployment.
    let repairs: usize = (0..n)
        .map(|i| deploy.sim().app(i).upper.state.repair_events.len())
        .sum();
    let reattached: usize = (0..n)
        .map(|i| {
            deploy
                .sim()
                .app(i)
                .upper
                .state
                .repair_events
                .iter()
                .filter(|e| e.reattached.is_some())
                .count()
        })
        .sum();
    println!("tree repair episodes: {repairs} started, {reattached} completed");
    assert!(rounds >= 10, "training stalled under churn");
}
