//! Runnable example applications for the Totoro engine.
//!
//! * `quickstart` — the smallest end-to-end run: one FL application
//!   trained to target accuracy over a simulated edge overlay.
//! * `smart_health` — the paper's motivating Smart Health scenario (§1):
//!   several FL applications with different policies training concurrently
//!   on the same devices.
//! * `traffic_detection` — the multi-ring scenario (§4.2/§4.4): a road
//!   traffic application spanning zones next to a zone-restricted medical
//!   application whose packets never leave their edge site.
//! * `churn_resilience` — training through churn: node failures, tree
//!   repair, master takeover (§4.5).
//! * `path_planning` — the §5 bandit path planner on an unreliable edge
//!   network, compared against its baselines.
//!
//! Run with `cargo run --release -p totoro-examples --bin <name>`.

#![forbid(unsafe_code)]
